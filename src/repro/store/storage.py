"""The store's single I/O seam.

Every byte the durable store reads or writes flows through one of the
two backends here — nothing else in :mod:`repro.store` may touch files
(repro-lint RPL008 enforces it).  Centralising I/O buys three things:
one place to wrap ``OSError`` into typed store errors, one place to
hang the :class:`~repro.store.crash.CrashInjector`, and one
:meth:`publish` helper that owns the only ``os.replace`` in the tree —
the atomic-rename + directory-fsync pair every snapshot goes through.

Durability model (shared by both backends):

* :meth:`append` / :meth:`write` data is **volatile** until
  :meth:`fsync` of that file;
* name bindings created by :meth:`write` or moved by :meth:`publish`
  are volatile until a directory sync — :meth:`publish` performs one,
  which is why the store creates even its WAL through a publish;
* :meth:`truncate` is treated as immediately durable (the
  metadata-journalling assumption; it only ever *discards* a torn tail,
  so a lost truncate merely re-runs on the next recovery).

:class:`OsStorage` maps the model onto a real directory.
:class:`MemStorage` models it exactly — including what a crash loses:
an unsynced file keeps a seeded prefix of its volatile bytes, an
unsynced binding vanishes — which is what lets the crash matrix prove
recovery against *worse* filesystems than the one CI runs on.
"""

from __future__ import annotations

import os

from repro.errors import ConfigError, StoreError
from repro.store.crash import CrashInjector


def _check_name(name: str) -> str:
    if not name or os.sep in name or name.startswith(".") or ".." in name:
        raise StoreError(f"bad store file name {name!r}")
    return name


class OsStorage:
    """Store files in one real directory.

    The directory must already exist and be writable — a missing or
    read-only ``--store-dir`` is an operator mistake surfaced as
    :class:`~repro.errors.ConfigError` before any state is touched.
    """

    def __init__(self, directory: str, *, injector: CrashInjector | None = None):
        self._dir = os.fspath(directory)
        self._injector = injector
        if not os.path.isdir(self._dir):
            raise ConfigError(
                f"store directory {self._dir!r} does not exist "
                "(create it first; the store never mkdirs)"
            )
        if not os.access(self._dir, os.W_OK | os.X_OK):
            raise ConfigError(f"store directory {self._dir!r} is not writable")

    def _path(self, name: str) -> str:
        return os.path.join(self._dir, _check_name(name))

    def _intercept(self, kind: str, name: str, nbytes: int = 0) -> int | None:
        if self._injector is None:
            return None
        return self._injector.intercept(kind, name, nbytes)

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def read(self, name: str) -> bytes | None:
        """The file's full contents, or ``None`` if it does not exist."""
        try:
            with open(self._path(name), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise StoreError(f"cannot read store file {name!r}: {exc}") from exc

    def append(self, name: str, data: bytes) -> None:
        """Append bytes (creating the file), volatile until fsync."""
        limit = self._intercept("append", name, len(data))
        try:
            with open(self._path(name), "ab") as handle:
                handle.write(data if limit is None else data[:limit])
        except OSError as exc:
            raise StoreError(f"cannot append to {name!r}: {exc}") from exc
        if limit is not None:
            self._injector.die("append", name)

    def write(self, name: str, data: bytes) -> None:
        """Create/overwrite a (temp) file, volatile until fsync."""
        limit = self._intercept("write", name, len(data))
        try:
            with open(self._path(name), "wb") as handle:
                handle.write(data if limit is None else data[:limit])
        except OSError as exc:
            raise StoreError(f"cannot write {name!r}: {exc}") from exc
        if limit is not None:
            self._injector.die("write", name)

    def fsync(self, name: str) -> None:
        """Make the file's current contents durable."""
        if self._intercept("fsync", name) is not None:
            self._injector.die("fsync", name)
        try:
            with open(self._path(name), "rb") as handle:
                os.fsync(handle.fileno())
        except OSError as exc:
            raise StoreError(f"cannot fsync {name!r}: {exc}") from exc

    def truncate(self, name: str, length: int) -> None:
        """Discard a torn tail; durable on return."""
        if self._intercept("truncate", name) is not None:
            self._injector.die("truncate", name)
        try:
            os.truncate(self._path(name), length)
            with open(self._path(name), "rb") as handle:
                os.fsync(handle.fileno())
        except OSError as exc:
            raise StoreError(f"cannot truncate {name!r}: {exc}") from exc

    def publish(self, tmp: str, final: str) -> None:
        """Atomically move a finished temp file over its final name.

        The one ``os.replace`` of the store (RPL008), followed by the
        directory sync that makes the new binding durable.
        """
        if self._intercept("replace", final) is not None:
            self._injector.die("replace", final)
        try:
            os.replace(self._path(tmp), self._path(final))
        except OSError as exc:
            raise StoreError(f"cannot publish {final!r}: {exc}") from exc
        if self._intercept("fsync-dir", final) is not None:
            self._injector.die("fsync-dir", final)
        try:
            fd = os.open(self._dir, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        except OSError as exc:
            raise StoreError(f"cannot sync store directory: {exc}") from exc


class _MemFile:
    __slots__ = ("data", "durable")

    def __init__(self, data: bytes = b"", durable: int = 0):
        self.data = bytearray(data)
        self.durable = durable


class MemStorage:
    """In-memory storage with explicit durable/volatile state.

    Tracks, per file, how many leading bytes an fsync has made durable,
    and, per *name binding*, whether a directory sync has persisted it.
    :meth:`crash` applies the losses a power cut may inflict: unsynced
    bindings vanish, and each surviving file keeps its durable prefix
    plus a seeded prefix of its volatile tail (a torn write).  The crash
    matrix runs the same plan against this and against
    :class:`OsStorage` in a temp dir — same kill points, strictly harsher
    survival rules here.
    """

    def __init__(self, *, injector: CrashInjector | None = None):
        self._view: dict[str, _MemFile] = {}
        self._durable: dict[str, _MemFile] = {}
        self._injector = injector

    def _intercept(self, kind: str, name: str, nbytes: int = 0) -> int | None:
        if self._injector is None:
            return None
        return self._injector.intercept(kind, name, nbytes)

    def exists(self, name: str) -> bool:
        return _check_name(name) in self._view

    def read(self, name: str) -> bytes | None:
        file = self._view.get(_check_name(name))
        return None if file is None else bytes(file.data)

    def append(self, name: str, data: bytes) -> None:
        limit = self._intercept("append", name, len(data))
        file = self._view.setdefault(_check_name(name), _MemFile())
        file.data += data if limit is None else data[:limit]
        if limit is not None:
            self._injector.die("append", name)

    def write(self, name: str, data: bytes) -> None:
        limit = self._intercept("write", name, len(data))
        self._view[_check_name(name)] = _MemFile(
            data if limit is None else data[:limit]
        )
        if limit is not None:
            self._injector.die("write", name)

    def fsync(self, name: str) -> None:
        if self._intercept("fsync", name) is not None:
            self._injector.die("fsync", name)
        file = self._view.get(_check_name(name))
        if file is None:
            raise StoreError(f"cannot fsync missing file {name!r}")
        file.durable = len(file.data)

    def truncate(self, name: str, length: int) -> None:
        if self._intercept("truncate", name) is not None:
            self._injector.die("truncate", name)
        file = self._view.get(_check_name(name))
        if file is None:
            raise StoreError(f"cannot truncate missing file {name!r}")
        del file.data[length:]
        file.durable = min(file.durable, len(file.data))

    def publish(self, tmp: str, final: str) -> None:
        if self._intercept("replace", final) is not None:
            self._injector.die("replace", final)
        file = self._view.pop(_check_name(tmp), None)
        if file is None:
            raise StoreError(f"cannot publish missing temp file {tmp!r}")
        self._view[_check_name(final)] = file
        if self._intercept("fsync-dir", final) is not None:
            self._injector.die("fsync-dir", final)
        self._durable = dict(self._view)

    def crash(self, rng) -> None:
        """Simulate the power cut: keep only what durability promised.

        ``rng`` (typically ``plan.rng("crash")``) decides how much of
        each file's volatile tail survives.  Detaches the injector —
        recovery then runs against the surviving bytes uninjected.
        """
        survivors: dict[str, _MemFile] = {}
        for name, file in self._durable.items():
            volatile = len(file.data) - file.durable
            keep = file.durable + (rng.randrange(volatile + 1) if volatile else 0)
            survivors[name] = _MemFile(bytes(file.data[:keep]), keep)
        self._view = survivors
        self._durable = dict(survivors)
        self._injector = None
