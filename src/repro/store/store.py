""":class:`DurableSketchStore` — the crash-safe sketch façade.

Ties the pieces together around one invariant: **WAL before ack**.  A
batch update plans its key deltas against the live sketch (overlay
ranks, nothing mutated), frames them into a single CRC'd record,
appends and fsyncs it, and only then applies the deltas in memory and
returns.  A batch the caller saw acknowledged therefore survives any
crash; a batch interrupted mid-append is wholly in or wholly out (the
record CRC decides), never half-applied.

Recovery (:meth:`DurableSketchStore.open` on a non-empty directory):

1. load the newest published snapshot (CRC + config digest checked) —
   or start from an empty sketch when none exists;
2. scan the WAL, stop at the first record that fails to frame or
   checksum, truncate that torn tail durably;
3. replay, in log order, every record whose generation matches the
   snapshot's; older generations are already folded into the snapshot
   and are skipped.

The result is bit-identical — ``encode()`` and all — to a fresh sketch
of the acknowledged points, which the differential crash matrix
(``tests/test_store_recovery.py``) proves at every kill point, and a
second recovery of a recovered store is a fixpoint.

Snapshots (:meth:`DurableSketchStore.snapshot`, auto-triggered by WAL
growth) write the full columnar state to a temp file, fsync, publish it
atomically, then rotate in a fresh WAL and bump the generation — each
step individually crash-safe because replay keys off the published
snapshot's generation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import ProtocolConfig
from repro.errors import ConfigError, StoreCorruptError
from repro.scale.incremental import ShardedIncrementalSketch
from repro.serve.handshake import config_digest
from repro.store import snapshot as snapshot_codec
from repro.store import wal as wal_codec
from repro.store.storage import OsStorage

#: Flat file names inside a store directory.
SNAPSHOT_NAME = "snapshot.bin"
WAL_NAME = "wal.log"
_TMP_SUFFIX = "~tmp"

#: Default WAL size that triggers an automatic snapshot on the next
#: batch.  Crossing it trades one snapshot write for a shorter replay —
#: BENCH_10 measures the actual crossover on this hardware.
DEFAULT_SNAPSHOT_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class RecoveryInfo:
    """What :meth:`DurableSketchStore.open` found and did.

    Attributes
    ----------
    source:
        ``"fresh"`` (empty directory), ``"snapshot"``, ``"wal"`` or
        ``"snapshot+wal"`` — where the recovered state came from.
    generation:
        Snapshot epoch the store resumed at.
    replayed_records / replayed_deltas:
        WAL records (and key deltas inside them) applied on top of the
        snapshot.
    truncated_bytes:
        Torn-tail bytes discarded at the first bad CRC (0 on a clean
        shutdown).
    n_points:
        Point count of the recovered sketch.
    """

    source: str
    generation: int
    replayed_records: int
    replayed_deltas: int
    truncated_bytes: int
    n_points: int


class DurableSketchStore:
    """A :class:`~repro.scale.incremental.ShardedIncrementalSketch`
    whose updates survive ``kill -9``.

    Build via :meth:`open`; mutate via :meth:`insert_batch` /
    :meth:`remove_batch` / :meth:`bulk_load`; read via :attr:`sketch`
    (treat as read-only) and :meth:`encode`.
    """

    def __init__(
        self,
        config: ProtocolConfig,
        storage,
        sketch: ShardedIncrementalSketch,
        generation: int,
        recovery: RecoveryInfo,
        *,
        snapshot_every_bytes: int = DEFAULT_SNAPSHOT_BYTES,
    ):
        self.config = config
        self.storage = storage
        self.sketch = sketch
        self.generation = generation
        self.recovery = recovery
        self.snapshot_every_bytes = snapshot_every_bytes
        self._digest = config_digest(config, "sharded")
        self._wal_bytes = 0

    @classmethod
    def open(
        cls,
        config: ProtocolConfig,
        directory: str | None = None,
        *,
        storage=None,
        snapshot_every_bytes: int = DEFAULT_SNAPSHOT_BYTES,
    ) -> "DurableSketchStore":
        """Open (recovering if needed) the store in ``directory``.

        Pass ``storage`` explicitly to run over a
        :class:`~repro.store.storage.MemStorage` (tests, crash matrix);
        otherwise an :class:`~repro.store.storage.OsStorage` over
        ``directory`` is used.
        """
        if storage is None:
            storage = OsStorage(directory)
        digest = config_digest(config, "sharded")
        snap_bytes = storage.read(SNAPSHOT_NAME)
        if snap_bytes is not None:
            sketch, generation = snapshot_codec.load_snapshot(
                snap_bytes, config, digest
            )
            source = "snapshot"
        else:
            sketch, generation = ShardedIncrementalSketch(config), 0
            source = "fresh"
        wal_bytes = storage.read(WAL_NAME)
        records, clean_len = wal_codec.scan_records(wal_bytes or b"")
        truncated = len(wal_bytes or b"") - clean_len
        if truncated:
            storage.truncate(WAL_NAME, clean_len)
        replayed_records = replayed_deltas = 0
        for record_generation, kind, payload in records:
            if record_generation < generation:
                continue
            if record_generation > generation:
                raise StoreCorruptError(
                    f"WAL record at generation {record_generation} outruns "
                    f"the published snapshot (generation {generation})"
                )
            if kind != wal_codec.KIND_DELTAS:
                raise StoreCorruptError(f"unknown WAL record kind {kind}")
            deltas = wal_codec.decode_deltas(sketch, payload)
            for shard, level, key, sign in deltas:
                sketch.apply_delta(shard, level, key, sign)
            replayed_records += 1
            replayed_deltas += len(deltas)
        if replayed_records:
            source = "wal" if source == "fresh" else "snapshot+wal"
        if wal_bytes is None:
            # First boot: publish an empty WAL so its directory entry is
            # durable before any acked append lands in it.
            storage.write(WAL_NAME + _TMP_SUFFIX, b"")
            storage.fsync(WAL_NAME + _TMP_SUFFIX)
            storage.publish(WAL_NAME + _TMP_SUFFIX, WAL_NAME)
        recovery = RecoveryInfo(
            source=source,
            generation=generation,
            replayed_records=replayed_records,
            replayed_deltas=replayed_deltas,
            truncated_bytes=truncated,
            n_points=sketch.n_points,
        )
        store = cls(
            config, storage, sketch, generation, recovery,
            snapshot_every_bytes=snapshot_every_bytes,
        )
        store._wal_bytes = clean_len
        return store

    def _log_batch(self, points, plan) -> int:
        """Plan a batch, WAL it, fsync, apply, maybe snapshot."""
        points = list(points)
        if not points:
            return 0
        pending = [{} for _ in self.sketch.shard_sketches()]
        groups: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for point in points:
            shard, deltas, sign = plan(point, pending)
            for level, key in deltas:
                groups.setdefault((shard, level), []).append((key, sign))
        payload = wal_codec.encode_deltas(
            self.sketch,
            [(shard, level, deltas) for (shard, level), deltas in groups.items()],
        )
        record = wal_codec.encode_record(
            self.generation, wal_codec.KIND_DELTAS, payload
        )
        self.storage.append(WAL_NAME, record)
        self.storage.fsync(WAL_NAME)
        for (shard, level), deltas in groups.items():
            for key, sign in deltas:
                self.sketch.apply_delta(shard, level, key, sign)
        self._wal_bytes += len(record)
        if self._wal_bytes >= self.snapshot_every_bytes:
            self.snapshot()
        return len(points)

    def insert_batch(self, points) -> int:
        """Durably insert a batch: one WAL record, fsynced before return.

        Validation (occupancy) runs during planning — a failed batch
        writes nothing and applies nothing.  Returns the batch size.
        """
        def plan(point, pending):
            shard, deltas = self.sketch.plan_insert(point, pending)
            return shard, deltas, 1

        return self._log_batch(points, plan)

    def remove_batch(self, points) -> int:
        """Durably remove a batch (same contract as :meth:`insert_batch`)."""
        def plan(point, pending):
            shard, deltas = self.sketch.plan_remove(point, pending)
            return shard, deltas, -1

        return self._log_batch(points, plan)

    def insert(self, point) -> None:
        """Durably insert one point (a one-element batch)."""
        self.insert_batch([point])

    def remove(self, point) -> None:
        """Durably remove one point (a one-element batch)."""
        self.remove_batch([point])

    def bulk_load(self, points) -> int:
        """Load an initial point set through the vectorized bulk path.

        Only valid on an empty store.  Durability comes from the
        snapshot this publishes, not from the WAL — the load is
        acknowledged when it returns; a crash before that recovers an
        empty store.
        """
        points = list(points)
        if self.sketch.n_points or self._wal_bytes:
            raise ConfigError(
                "bulk_load requires an empty store; use insert_batch"
            )
        self.sketch.insert_all(points)
        self.snapshot()
        self.recovery = replace(self.recovery, n_points=self.sketch.n_points)
        return len(points)

    def snapshot(self) -> None:
        """Publish a full snapshot and rotate the WAL (generation bump).

        Crash-safe at every step: the snapshot becomes visible in one
        atomic publish at generation N+1, after which the old WAL's
        generation-N records are dead weight that replay skips; the WAL
        rotation then reclaims them with a second atomic publish.
        """
        payload = snapshot_codec.encode_snapshot(
            self.sketch, self.generation + 1, self._digest
        )
        tmp = SNAPSHOT_NAME + _TMP_SUFFIX
        self.storage.write(tmp, payload)
        self.storage.fsync(tmp)
        self.storage.publish(tmp, SNAPSHOT_NAME)
        wal_tmp = WAL_NAME + _TMP_SUFFIX
        self.storage.write(wal_tmp, b"")
        self.storage.fsync(wal_tmp)
        self.storage.publish(wal_tmp, WAL_NAME)
        self.generation += 1
        self._wal_bytes = 0

    def encode(self) -> bytes:
        """The live sharded wire message (bit-identical to fresh encode)."""
        return self.sketch.encode()

    def one_round_encode(self) -> bytes:
        """The live v1 one-round message (``shards == 1`` stores only)."""
        shards = self.sketch.shard_sketches()
        if len(shards) != 1:
            raise ConfigError("one-round payload requires a single-shard store")
        return shards[0].encode()
