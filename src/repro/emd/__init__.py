"""Earth mover's distance substrate.

The paper's quality guarantee is stated in EMD, so the evaluation harness
needs trustworthy EMD oracles at several scales:

* :func:`repro.emd.matching.emd` — exact min-cost perfect matching
  (own successive-shortest-path implementation, optional scipy backend).
* :func:`repro.emd.partial.emd_k` — the paper's ``EMD_k``: the best EMD
  after deleting ``k`` points from each side.
* :func:`repro.emd.onedim.emd_1d` — ``O(n log n)`` exact EMD on the line.
* :class:`repro.emd.estimate.GridEmdEstimator` — an ``O(n d log Δ)``
  estimator for benchmark-scale sets.
"""

from repro.emd.estimate import GridEmdEstimator
from repro.emd.matching import emd, min_cost_matching
from repro.emd.metrics import distance, pairwise_costs
from repro.emd.onedim import emd_1d
from repro.emd.partial import emd_k

__all__ = [
    "GridEmdEstimator",
    "distance",
    "emd",
    "emd_1d",
    "emd_k",
    "min_cost_matching",
    "pairwise_costs",
]
