"""Scalable EMD estimation via a randomly shifted grid pyramid.

Exact EMD is a min-cost matching — cubic-ish and unusable at the set sizes
the communication benchmarks run at.  The classical substitute (Indyk &
Thaper) embeds point sets into ℓ1 using a pyramid of randomly shifted grids:
at level ``ℓ`` (cell side ``2^ℓ``) mass that sits in different cells must
travel; summing ``cell_side × (cell count disagreement)`` over levels
estimates EMD within an ``O(d log Δ)`` factor in expectation, and much
better than that on the clustered workloads used here.

Averaging over a few independent shifts tightens the variance; the
benchmarks use the estimator only where exact EMD is infeasible and report
which oracle produced each number.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Sequence

from repro.emd.metrics import Point, validate_points
from repro.errors import ConfigError


class GridEmdEstimator:
    """EMD estimator over ``[delta]^d`` with ``ℓ1`` ground distance.

    Parameters
    ----------
    delta:
        Grid extent; coordinates must lie in ``[0, delta)``.
    dimension:
        Point dimension.
    seed:
        Seed for the random shifts (deterministic runs).
    shifts:
        Number of independent shifted pyramids to average.
    """

    def __init__(self, delta: int, dimension: int, seed: int = 0, shifts: int = 3):
        if delta < 2:
            raise ConfigError(f"delta must be >= 2, got {delta}")
        if dimension < 1:
            raise ConfigError(f"dimension must be >= 1, got {dimension}")
        if shifts < 1:
            raise ConfigError(f"shifts must be >= 1, got {shifts}")
        self.delta = delta
        self.dimension = dimension
        self.levels = max(1, (delta - 1).bit_length())
        rng = random.Random(seed)
        self._offsets = [
            tuple(rng.randrange(0, 1 << self.levels) for _ in range(dimension))
            for _ in range(shifts)
        ]

    def _check(self, points: Sequence[Point], name: str) -> None:
        validate_points(points, name=name)
        if points and len(points[0]) != self.dimension:
            raise ConfigError(
                f"{name} have dimension {len(points[0])}, "
                f"estimator configured for {self.dimension}"
            )

    def estimate(self, xs: Sequence[Point], ys: Sequence[Point]) -> float:
        """Estimate ``EMD(xs, ys)`` (sets may have unequal sizes; surplus
        mass is charged the grid diameter at the top level)."""
        self._check(xs, "xs")
        self._check(ys, "ys")
        total = 0.0
        for offset in self._offsets:
            total += self._single_pyramid(xs, ys, offset)
        return total / len(self._offsets)

    def _single_pyramid(self, xs, ys, offset) -> float:
        estimate = 0.0
        for level in range(self.levels + 1):
            side = 1 << level
            x_cells = Counter(self._cell(p, offset, side) for p in xs)
            y_cells = Counter(self._cell(p, offset, side) for p in ys)
            disagreement = 0
            for cell in x_cells.keys() | y_cells.keys():
                disagreement += abs(x_cells.get(cell, 0) - y_cells.get(cell, 0))
            if level == 0:
                # Points in the same unit cell are identical: no cost.
                weight = 0.0
            else:
                # Mass split at level ℓ travelled at least ~ the previous
                # level's cell side; the 1/2 de-duplicates the two sides of
                # each disagreement.
                weight = (1 << (level - 1)) / 2.0
            estimate += weight * disagreement
        return estimate

    def _cell(self, point: Point, offset: tuple[int, ...], side: int):
        return tuple(
            (coordinate + shift) // side
            for coordinate, shift in zip(point, offset)
        )
