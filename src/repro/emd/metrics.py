"""Point metrics on the integer grid ``[Δ]^d``.

Points are tuples of integers (one tuple per point).  All public functions
accept any sequence of such tuples; distance computations convert to numpy
float arrays internally.

Supported metrics: ``"l1"`` (the paper's default), ``"l2"``, ``"linf"``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError

Point = tuple[int, ...]

SUPPORTED_METRICS = ("l1", "l2", "linf")


def validate_metric(metric: str) -> str:
    """Return the metric name if supported, else raise."""
    if metric not in SUPPORTED_METRICS:
        raise ConfigError(
            f"metric must be one of {SUPPORTED_METRICS}, got {metric!r}"
        )
    return metric


def validate_points(points: Sequence[Point], *, name: str = "points") -> None:
    """Check that all points share one dimension and have int coordinates."""
    if not points:
        return
    dimension = len(points[0])
    for index, point in enumerate(points):
        if len(point) != dimension:
            raise ConfigError(
                f"{name}[{index}] has dimension {len(point)}, expected {dimension}"
            )


def distance(a: Point, b: Point, metric: str = "l1") -> float:
    """Distance between two points.

    >>> distance((0, 0), (3, 4), "l1")
    7.0
    >>> distance((0, 0), (3, 4), "l2")
    5.0
    >>> distance((0, 0), (3, 4), "linf")
    4.0
    """
    validate_metric(metric)
    if len(a) != len(b):
        raise ConfigError(f"dimension mismatch: {len(a)} vs {len(b)}")
    deltas = [abs(x - y) for x, y in zip(a, b)]
    if metric == "l1":
        return float(sum(deltas))
    if metric == "linf":
        return float(max(deltas)) if deltas else 0.0
    return float(np.sqrt(sum(d * d for d in deltas)))


def pairwise_costs(
    xs: Sequence[Point], ys: Sequence[Point], metric: str = "l1"
) -> np.ndarray:
    """Dense ``len(xs) × len(ys)`` cost matrix under the metric."""
    validate_metric(metric)
    validate_points(xs, name="xs")
    validate_points(ys, name="ys")
    if xs and ys and len(xs[0]) != len(ys[0]):
        raise ConfigError(
            f"dimension mismatch: {len(xs[0])} vs {len(ys[0])}"
        )
    if not xs or not ys:
        return np.zeros((len(xs), len(ys)))
    a = np.asarray(xs, dtype=np.float64).reshape(len(xs), -1)
    b = np.asarray(ys, dtype=np.float64).reshape(len(ys), -1)
    diff = np.abs(a[:, None, :] - b[None, :, :])
    if metric == "l1":
        return diff.sum(axis=2)
    if metric == "linf":
        return diff.max(axis=2)
    return np.sqrt((diff * diff).sum(axis=2))


def diameter(delta: int, dimension: int, metric: str = "l1") -> float:
    """Diameter of the grid ``[delta]^d`` under the metric."""
    validate_metric(metric)
    if delta <= 0 or dimension <= 0:
        raise ConfigError("delta and dimension must be positive")
    side = float(delta - 1)
    if metric == "l1":
        return side * dimension
    if metric == "linf":
        return side
    return side * float(np.sqrt(dimension))
