"""Point metrics on the integer grid ``[Δ]^d``.

Points are tuples of integers (one tuple per point).  All public functions
accept any sequence of such tuples; dense cost matrices use numpy when it
is installed and a pure-Python fallback otherwise, so the protocol core
stays importable without any scientific stack.

Supported metrics: ``"l1"`` (the paper's default), ``"l2"``, ``"linf"``.
"""

from __future__ import annotations

import math
from typing import Sequence

try:  # optional: only dense cost matrices benefit from numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

from repro.errors import ConfigError

Point = tuple[int, ...]

SUPPORTED_METRICS = ("l1", "l2", "linf")


def validate_metric(metric: str) -> str:
    """Return the metric name if supported, else raise."""
    if metric not in SUPPORTED_METRICS:
        raise ConfigError(
            f"metric must be one of {SUPPORTED_METRICS}, got {metric!r}"
        )
    return metric


def validate_points(points: Sequence[Point], *, name: str = "points") -> None:
    """Check that all points share one dimension and have int coordinates."""
    if not points:
        return
    dimension = len(points[0])
    for index, point in enumerate(points):
        if len(point) != dimension:
            raise ConfigError(
                f"{name}[{index}] has dimension {len(point)}, expected {dimension}"
            )


def distance(a: Point, b: Point, metric: str = "l1") -> float:
    """Distance between two points.

    >>> distance((0, 0), (3, 4), "l1")
    7.0
    >>> distance((0, 0), (3, 4), "l2")
    5.0
    >>> distance((0, 0), (3, 4), "linf")
    4.0
    """
    validate_metric(metric)
    if len(a) != len(b):
        raise ConfigError(f"dimension mismatch: {len(a)} vs {len(b)}")
    deltas = [abs(x - y) for x, y in zip(a, b)]
    if metric == "l1":
        return float(sum(deltas))
    if metric == "linf":
        return float(max(deltas)) if deltas else 0.0
    return math.sqrt(sum(d * d for d in deltas))


class DenseCosts:
    """Minimal 2-D float matrix: the numpy-free ``pairwise_costs`` result.

    Supports exactly what the pure flow solvers consume — ``shape`` and
    ``matrix[i, j]`` indexing.
    """

    __slots__ = ("shape", "_rows")

    def __init__(self, rows: list[list[float]], n_cols: int):
        self._rows = rows
        self.shape = (len(rows), n_cols)

    def __getitem__(self, index: tuple[int, int]) -> float:
        row, col = index
        return self._rows[row][col]


def pairwise_costs(xs: Sequence[Point], ys: Sequence[Point], metric: str = "l1"):
    """Dense ``len(xs) × len(ys)`` cost matrix under the metric.

    Returns an ``np.ndarray`` when numpy is installed, else a
    :class:`DenseCosts` with the same indexing interface.
    """
    validate_metric(metric)
    validate_points(xs, name="xs")
    validate_points(ys, name="ys")
    if xs and ys and len(xs[0]) != len(ys[0]):
        raise ConfigError(
            f"dimension mismatch: {len(xs[0])} vs {len(ys[0])}"
        )
    if np is None:
        return DenseCosts(
            [[distance(x, y, metric) for y in ys] for x in xs], len(ys)
        )
    if not xs or not ys:
        return np.zeros((len(xs), len(ys)))
    a = np.asarray(xs, dtype=np.float64).reshape(len(xs), -1)
    b = np.asarray(ys, dtype=np.float64).reshape(len(ys), -1)
    diff = np.abs(a[:, None, :] - b[None, :, :])
    if metric == "l1":
        return diff.sum(axis=2)
    if metric == "linf":
        return diff.max(axis=2)
    return np.sqrt((diff * diff).sum(axis=2))


def diameter(delta: int, dimension: int, metric: str = "l1") -> float:
    """Diameter of the grid ``[delta]^d`` under the metric."""
    validate_metric(metric)
    if delta <= 0 or dimension <= 0:
        raise ConfigError("delta and dimension must be positive")
    side = float(delta - 1)
    if metric == "l1":
        return side * dimension
    if metric == "linf":
        return side
    return side * math.sqrt(dimension)
