"""Exact earth mover's distance on the line in ``O(n log n)``.

In one dimension the min-cost perfect matching under any ``ℓ_p`` metric
(they all coincide with ``|x - y|``) simply pairs the i-th smallest of one
set with the i-th smallest of the other.  This classical fact makes large-n
exactness affordable for the 1-D experiments.
"""

from __future__ import annotations

from typing import Sequence

from repro.emd.metrics import Point
from repro.errors import ConfigError


def emd_1d(xs: Sequence[Point], ys: Sequence[Point]) -> float:
    """Exact EMD between equal-size sets of 1-D points.

    Accepts 1-tuples (the library's point type) or bare numbers.

    >>> emd_1d([(0,), (5,)], [(1,), (5,)])
    1.0
    """
    if len(xs) != len(ys):
        raise ConfigError(
            f"EMD needs equal-size sets, got {len(xs)} and {len(ys)}"
        )

    def coordinate(value) -> float:
        if isinstance(value, (int, float)):
            return float(value)
        if len(value) != 1:
            raise ConfigError(
                f"emd_1d needs 1-D points, got dimension {len(value)}"
            )
        return float(value[0])

    left = sorted(coordinate(x) for x in xs)
    right = sorted(coordinate(y) for y in ys)
    return float(sum(abs(a - b) for a, b in zip(left, right)))
