"""Exact earth mover's distance via min-cost perfect matching.

Two interchangeable engines:

* ``backend="flow"`` — the library's own successive-shortest-path solver
  (:mod:`repro.emd.flow`); transparent, no dependencies beyond the repo.
* ``backend="scipy"`` — ``scipy.optimize.linear_sum_assignment`` (C speed);
  used at benchmark scale.
* ``backend="auto"`` — scipy above a small size cutoff when installed,
  flow below (keeping the reference implementation continuously exercised)
  and everywhere when scipy is absent.

Both produce the same optimum; the test suite asserts agreement.
"""

from __future__ import annotations

from typing import Sequence

try:  # optional accelerator; the flow backend is dependency-free
    from scipy.optimize import linear_sum_assignment
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    linear_sum_assignment = None

from repro.emd.flow import MinCostFlow
from repro.emd.metrics import Point, pairwise_costs, validate_metric
from repro.errors import ConfigError

_AUTO_CUTOFF = 40


def _require_scipy() -> None:
    if linear_sum_assignment is None:
        raise ConfigError(
            "backend 'scipy' requires scipy, which is not installed; "
            "use backend='flow' or 'auto'"
        )


def _validate_equal_sizes(xs: Sequence[Point], ys: Sequence[Point]) -> None:
    if len(xs) != len(ys):
        raise ConfigError(
            f"EMD needs equal-size sets, got {len(xs)} and {len(ys)}"
        )


def min_cost_matching(
    xs: Sequence[Point],
    ys: Sequence[Point],
    metric: str = "l1",
    backend: str = "auto",
) -> tuple[list[tuple[int, int]], float]:
    """Min-cost perfect matching between two equal-size point sequences.

    Returns ``(pairs, total_cost)`` where ``pairs`` is a list of
    ``(x_index, y_index)`` tuples covering every point exactly once.
    """
    validate_metric(metric)
    _validate_equal_sizes(xs, ys)
    if backend not in ("auto", "flow", "scipy"):
        raise ConfigError(f"unknown backend {backend!r}")
    n = len(xs)
    if n == 0:
        return [], 0.0
    if backend == "scipy":
        _require_scipy()
    costs = pairwise_costs(xs, ys, metric)
    if backend == "scipy" or (
        backend == "auto" and n > _AUTO_CUTOFF and linear_sum_assignment is not None
    ):
        rows, cols = linear_sum_assignment(costs)
        total = float(costs[rows, cols].sum())
        return list(zip(rows.tolist(), cols.tolist())), total
    return _matching_by_flow(costs)


def _matching_by_flow(costs) -> tuple[list[tuple[int, int]], float]:
    n = costs.shape[0]
    source = 2 * n
    sink = 2 * n + 1
    network = MinCostFlow(2 * n + 2)
    x_arc_ids = {}
    for i in range(n):
        network.add_arc(source, i, 1.0, 0.0)
        network.add_arc(n + i, sink, 1.0, 0.0)
    for i in range(n):
        for j in range(n):
            x_arc_ids[(i, j)] = network.add_arc(i, n + j, 1.0, float(costs[i, j]))
    flow, total = network.solve(source, sink, float(n))
    if flow < n:
        raise ConfigError("perfect matching infeasible (internal error)")
    pairs = [
        (i, j)
        for (i, j), arc_id in x_arc_ids.items()
        if network.arc_flow(arc_id) > 0.5
    ]
    pairs.sort()
    return pairs, total


def emd(
    xs: Sequence[Point],
    ys: Sequence[Point],
    metric: str = "l1",
    backend: str = "auto",
) -> float:
    """Exact earth mover's distance between equal-size point sets.

    ``EMD(X, Y) = min over bijections π of Σ f(x_i, y_π(i))`` — Definition
    3.2 of the follow-up's restatement of the SIGMOD'14 model.

    >>> emd([(0,), (10,)], [(1,), (10,)])
    1.0
    """
    _, total = min_cost_matching(xs, ys, metric, backend)
    return total
