"""``EMD_k`` — earth mover's distance with the k worst points forgiven.

``EMD_k(X, Y)`` is the cheapest cost of a matching that covers all but ``k``
points of each side (Definition 3.3 in the follow-up's restatement).  It is
the quantity against which the paper's protocol is judged: with budget
parameter ``k`` the repaired set satisfies
``EMD(S_A, S'_B) ≤ O(d) · EMD_k(S_A, S_B)``.

Computation: min-cost perfect matching on a ``(n+k) × (n+k)`` cost matrix
where ``k`` dummy rows/columns with zero cost absorb the forgiven points.
Forgiving *fewer* than ``k`` points is never cheaper-to-forbid (deleting
points only removes matching obligations), so allowing dummy-dummy pairs is
sound and the construction computes ``min_{j ≤ k} EMD_j = EMD_k`` exactly.
"""

from __future__ import annotations

from typing import Sequence

try:  # optional accelerator; the flow backend is dependency-free
    import numpy as np
    from scipy.optimize import linear_sum_assignment
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None
    linear_sum_assignment = None

from repro.emd.flow import MinCostFlow
from repro.emd.matching import _require_scipy
from repro.emd.metrics import Point, pairwise_costs, validate_metric
from repro.errors import ConfigError

_AUTO_CUTOFF = 40


def emd_k(
    xs: Sequence[Point],
    ys: Sequence[Point],
    k: int,
    metric: str = "l1",
    backend: str = "auto",
) -> float:
    """Exact ``EMD_k`` between equal-size point sets.

    Parameters
    ----------
    xs, ys:
        Equal-size point sequences.
    k:
        Number of points forgiven on *each* side; ``emd_k(x, y, 0)`` equals
        ``emd(x, y)``; ``k >= n`` gives 0.
    """
    validate_metric(metric)
    if len(xs) != len(ys):
        raise ConfigError(
            f"EMD_k needs equal-size sets, got {len(xs)} and {len(ys)}"
        )
    if k < 0:
        raise ConfigError(f"k must be non-negative, got {k}")
    if backend not in ("auto", "flow", "scipy"):
        raise ConfigError(f"unknown backend {backend!r}")
    n = len(xs)
    if n == 0 or k >= n:
        return 0.0
    if k == 0:
        # Delegate to the perfect-matching path (cheaper, same answer).
        from repro.emd.matching import emd

        return emd(xs, ys, metric, backend)
    if backend == "scipy":
        _require_scipy()
    costs = pairwise_costs(xs, ys, metric)
    if backend == "scipy" or (
        backend == "auto" and n > _AUTO_CUTOFF and linear_sum_assignment is not None
    ):
        return _emd_k_scipy(costs, k)
    return _emd_k_flow(costs, k, n)


def _emd_k_scipy(costs, k: int) -> float:
    n = costs.shape[0]
    padded = np.zeros((n + k, n + k))
    padded[:n, :n] = costs
    # Dummy columns absorb up to k of xs; dummy rows absorb up to k of ys;
    # dummy-dummy pairs cost 0 so unused forgiveness is free.
    rows, cols = linear_sum_assignment(padded)
    return float(padded[rows, cols].sum())


def _emd_k_flow(costs, k: int, n: int) -> float:
    """Reference path: push exactly n - k units through the bipartite graph.

    Successive-shortest-path flows are optimal at every intermediate value,
    so the cost after ``n - k`` augmentations is exactly ``EMD_k``.
    """
    source = 2 * n
    sink = 2 * n + 1
    network = MinCostFlow(2 * n + 2)
    for i in range(n):
        network.add_arc(source, i, 1.0, 0.0)
        network.add_arc(n + i, sink, 1.0, 0.0)
    for i in range(n):
        for j in range(n):
            network.add_arc(i, n + j, 1.0, float(costs[i, j]))
    flow, total = network.solve(source, sink, float(n - k))
    if flow + 1e-9 < n - k:
        raise ConfigError("partial matching infeasible (internal error)")
    return total
