"""Min-cost flow by successive shortest paths with Johnson potentials.

This is the reference engine behind exact and partial EMD.  It is written
for clarity and cross-checked against ``scipy.optimize.linear_sum_assignment``
in the test suite; the scipy backend is preferred at benchmark scale.

The key property exploited by :func:`repro.emd.partial.emd_k`: successive
shortest-path augmentation yields a *minimum-cost flow of value f* after f
augmentations, for every f — so stopping early gives the optimal partial
matching of that cardinality.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import ConfigError

_EPS = 1e-9


@dataclass
class _Arc:
    head: int
    capacity: float
    cost: float
    flow: float = 0.0

    @property
    def residual(self) -> float:
        return self.capacity - self.flow


class MinCostFlow:
    """A small dense-friendly min-cost-flow solver.

    Nodes are integers ``0 .. n-1``.  Arcs are added with non-negative
    capacity; costs may be any float ≥ 0 (reduced costs keep Dijkstra
    valid; all EMD graphs have non-negative costs).
    """

    def __init__(self, n_nodes: int):
        if n_nodes <= 0:
            raise ConfigError(f"need at least one node, got {n_nodes}")
        self.n_nodes = n_nodes
        self._arcs: list[_Arc] = []
        self._adjacency: list[list[int]] = [[] for _ in range(n_nodes)]

    def add_arc(self, tail: int, head: int, capacity: float, cost: float) -> int:
        """Add a directed arc and its residual twin; return the arc id."""
        for node in (tail, head):
            if not 0 <= node < self.n_nodes:
                raise ConfigError(f"node {node} out of range")
        if capacity < 0:
            raise ConfigError(f"capacity must be non-negative, got {capacity}")
        if cost < 0:
            raise ConfigError(f"cost must be non-negative, got {cost}")
        arc_id = len(self._arcs)
        self._arcs.append(_Arc(head, capacity, cost))
        self._arcs.append(_Arc(tail, 0.0, -cost))
        self._adjacency[tail].append(arc_id)
        self._adjacency[head].append(arc_id + 1)
        return arc_id

    def arc_flow(self, arc_id: int) -> float:
        """Flow currently on a (forward) arc."""
        return self._arcs[arc_id].flow

    def solve(self, source: int, sink: int, max_flow: float) -> tuple[float, float]:
        """Push up to ``max_flow`` units from source to sink at min cost.

        Returns ``(flow_pushed, total_cost)``.  Runs Dijkstra on reduced
        costs once per unit-capacity augmentation (EMD graphs are unit
        capacity, so one augmentation pushes one unit).
        """
        if source == sink:
            raise ConfigError("source and sink must differ")
        potentials = [0.0] * self.n_nodes
        flow_pushed = 0.0
        total_cost = 0.0

        while flow_pushed + _EPS < max_flow:
            distances, parents = self._dijkstra(source, potentials)
            if distances[sink] == float("inf"):
                break  # no augmenting path remains
            for node in range(self.n_nodes):
                if distances[node] < float("inf"):
                    potentials[node] += distances[node]
            # Find bottleneck along the path.
            bottleneck = max_flow - flow_pushed
            node = sink
            while node != source:
                arc = self._arcs[parents[node]]
                bottleneck = min(bottleneck, arc.residual)
                node = self._arcs[parents[node] ^ 1].head
            # Apply.
            node = sink
            while node != source:
                arc_id = parents[node]
                self._arcs[arc_id].flow += bottleneck
                self._arcs[arc_id ^ 1].flow -= bottleneck
                total_cost += bottleneck * self._arcs[arc_id].cost
                node = self._arcs[arc_id ^ 1].head
            flow_pushed += bottleneck
        return flow_pushed, total_cost

    def _dijkstra(self, source: int, potentials: list[float]):
        infinity = float("inf")
        distances = [infinity] * self.n_nodes
        parents = [-1] * self.n_nodes
        distances[source] = 0.0
        heap = [(0.0, source)]
        while heap:
            dist, node = heapq.heappop(heap)
            if dist > distances[node] + _EPS:
                continue
            for arc_id in self._adjacency[node]:
                arc = self._arcs[arc_id]
                if arc.residual <= _EPS:
                    continue
                reduced = arc.cost + potentials[node] - potentials[arc.head]
                candidate = dist + reduced
                if candidate + _EPS < distances[arc.head]:
                    distances[arc.head] = candidate
                    parents[arc.head] = arc_id
                    heapq.heappush(heap, (candidate, arc.head))
        return distances, parents
