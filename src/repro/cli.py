"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Write a synthetic workload (two noisy point sets + metadata) to JSON.
``reconcile``
    Reconcile Bob's JSON point set towards Alice's and report the
    transcript; optionally write the repaired set.
``estimate``
    Print the per-level difference estimates between two sets (the
    adaptive protocol's round-1 view) — a quick diagnosis of how far apart
    two replicas really are.
``info``
    Print the analytic communication/accuracy predictions for a
    configuration without touching any data.
``serve``
    Run the asyncio reconciliation server: hold Alice's point set and
    serve any protocol variant over TCP (one session per connection).
``sync``
    Connect to a server as Bob and repair the local point set towards
    the server's, over real TCP.

All commands are deterministic given ``--seed`` (``serve``/``sync`` up to
network scheduling; their wire bytes match the simulated channel's).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from pathlib import Path

from repro.core.adaptive import AdaptiveReconciler, reconcile_adaptive
from repro.core.bounds import (
    approximation_factor,
    lower_bound_bits,
    one_round_bits_estimate,
)
from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.core.rateless import reconcile_rateless
from repro.errors import ConfigError, ReproError
from repro.iblt.backends import available_backends, backend_names
from repro.iblt.decode import DECODE_STRATEGIES
from repro.net import codec
from repro.scale import reconcile_sharded
from repro.scale.executors import executors_available
from repro.serve import (
    DEFAULT_TIMEOUT,
    ReconciliationServer,
    RetryPolicy,
    ServerCore,
    WorkerPoolServer,
    resilient_sync,
    sync_blocking,
)
from repro.store import DurableSketchStore
from repro.workloads.geo import geo_pair
from repro.workloads.sensors import sensor_pair
from repro.workloads.synthetic import clustered_pair, perturbed_pair

GENERATORS = ("uniform", "clustered", "sensor", "geo")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Robust set reconciliation (SIGMOD 2014) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic workload to JSON")
    gen.add_argument("output", type=Path, help="output JSON path")
    gen.add_argument("--kind", choices=GENERATORS, default="uniform")
    gen.add_argument("--n", type=int, default=1000)
    gen.add_argument("--delta", type=int, default=2**16)
    gen.add_argument("--dimension", type=int, default=2)
    gen.add_argument("--true-k", type=int, default=8)
    gen.add_argument("--noise", type=float, default=3.0)
    gen.add_argument("--seed", type=int, default=0)

    backend_kwargs = dict(
        choices=["auto"] + backend_names(), default="auto",
        help="IBLT cell-storage backend (default: auto = fastest available)",
    )
    wire_codec_kwargs = dict(
        choices=("vector", "scalar"), default="vector", dest="wire_codec",
        help=(
            "wire codec path: 'vector' (default) packs whole tables "
            "columnarly when numpy is available, 'scalar' forces the "
            "field-at-a-time reference (diagnostics / A-B measurement; "
            "the bytes are identical either way)"
        ),
    )

    rec = sub.add_parser("reconcile", help="reconcile Bob towards Alice")
    rec.add_argument("workload", type=Path, help="JSON from 'generate' (or same schema)")
    rec.add_argument("--k", type=int, default=16, help="budget parameter")
    rec.add_argument("--seed", type=int, default=0)
    rec.add_argument("--adaptive", action="store_true",
                     help="use the two-round adaptive protocol")
    rec.add_argument("--rateless", action="store_true",
                     help="use the rateless streaming protocol (bytes track "
                          "the true difference; no estimation round)")
    rec.add_argument("--backend", **backend_kwargs)
    rec.add_argument("--wire-codec", **wire_codec_kwargs)
    rec.add_argument("--decode-strategy", choices=DECODE_STRATEGIES,
                     default="batch", dest="decode_strategy",
                     help="IBLT peeling strategy: batch (round-based, "
                          "vectorized) or scalar (reference peel; "
                          "diagnostics)")
    rec.add_argument("--shards", type=int, default=1,
                     help="spatial shards for the sharded engine (default: 1 "
                          "= monolithic protocol)")
    rec.add_argument("--workers", type=int, default=None,
                     help="shard-executor concurrency (default: from machine)")
    rec.add_argument("--executor", choices=("auto",) + executors_available(),
                     default="auto",
                     help="shard executor: serial, thread, or process pool "
                          "(default: auto)")
    rec.add_argument("--output", type=Path, default=None,
                     help="write the repaired set to this JSON path")

    est = sub.add_parser("estimate", help="per-level difference estimates")
    est.add_argument("workload", type=Path)
    est.add_argument("--k", type=int, default=16)
    est.add_argument("--seed", type=int, default=0)
    est.add_argument("--backend", **backend_kwargs)
    est.add_argument("--wire-codec", **wire_codec_kwargs)

    info = sub.add_parser("info", help="analytic predictions for a config")
    info.add_argument("--delta", type=int, default=2**16)
    info.add_argument("--dimension", type=int, default=2)
    info.add_argument("--k", type=int, default=16)

    serve = sub.add_parser(
        "serve", help="serve reconciliation sessions (as Alice) over TCP"
    )
    serve.add_argument("workload", type=Path,
                       help="JSON from 'generate'; the server holds its "
                            "'alice' point set")
    serve.add_argument("--k", type=int, default=16)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--backend", **backend_kwargs)
    serve.add_argument("--wire-codec", **wire_codec_kwargs)
    serve.add_argument("--shards", type=int, default=1,
                       help="shard count clients of the sharded variant "
                            "must match")
    serve.add_argument("--workers", type=int, default=1,
                       help="pre-fork server worker processes (default: 1 = "
                            "single-process server, the exact pre-pool "
                            "behaviour; N>1 forks N accept loops sharing "
                            "one warmed core)")
    serve.add_argument("--shard-workers", type=int, default=None,
                       dest="shard_workers",
                       help="shard-executor concurrency inside the sharded "
                            "engine (default: from machine)")
    serve.add_argument("--executor", choices=("auto",) + executors_available(),
                       default="auto")
    serve.add_argument("--offload", choices=("thread", "process"),
                       default=None,
                       help="run session compute off each accept loop: "
                            "'thread' keeps the loop responsive, 'process' "
                            "additionally moves heavy per-request encodes "
                            "to a copy-on-write process pool")
    serve.add_argument("--store-dir", type=Path, default=None,
                       dest="store_dir",
                       help="durable sketch store directory (must exist and "
                            "be writable): first boot bulk-loads the "
                            "workload and snapshots it; later boots recover "
                            "the sketch from disk instead of re-encoding")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default: 0 = pick one and print it)")
    serve.add_argument("--max-sessions", type=int, default=64,
                       dest="max_sessions",
                       help="bound on concurrently running sessions")
    serve.add_argument("--max-syncs", type=int, default=None, dest="max_syncs",
                       help="exit after this many sessions finish "
                            "(default: serve forever)")
    serve.add_argument("--max-pending", type=int, default=None,
                       dest="max_pending",
                       help="shed arrivals with a typed RETRY_LATER refusal "
                            "once this many validated connections are "
                            "waiting for a slot (default: queue unboundedly)")
    serve.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT,
                       help="per-read timeout in seconds")

    syn = sub.add_parser(
        "sync", help="repair the local point set (as Bob) against a server"
    )
    syn.add_argument("workload", type=Path,
                     help="JSON from 'generate'; this side holds its 'bob' "
                          "point set")
    syn.add_argument("--host", default="127.0.0.1")
    syn.add_argument("--port", type=int, required=True)
    syn.add_argument("--k", type=int, default=16)
    syn.add_argument("--seed", type=int, default=0)
    syn.add_argument("--adaptive", action="store_true",
                     help="use the two-round adaptive variant")
    syn.add_argument("--rateless", action="store_true",
                     help="use the rateless streaming variant")
    syn.add_argument("--shards", type=int, default=1,
                     help=">1 selects the sharded variant (must match the "
                          "server's --shards)")
    syn.add_argument("--backend", **backend_kwargs)
    syn.add_argument("--wire-codec", **wire_codec_kwargs)
    syn.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT)
    syn.add_argument("--retries", type=int, default=1,
                     help="total sync attempts before giving up; transient "
                          "failures back off and retry, and interrupted "
                          "rateless streams resume instead of restarting "
                          "(default: 1 = no retries)")
    syn.add_argument("--retry-deadline", type=float, default=30.0,
                     dest="retry_deadline",
                     help="overall budget in seconds for the whole retry "
                          "sequence (default: 30)")
    syn.add_argument("--output", type=Path, default=None,
                     help="write the repaired set to this JSON path")
    return parser


def _generate(args) -> dict:
    if args.kind == "uniform":
        pair = perturbed_pair(args.seed, args.n, args.delta, args.dimension,
                              args.true_k, args.noise)
    elif args.kind == "clustered":
        pair = clustered_pair(args.seed, args.n, args.delta, args.dimension,
                              args.true_k, args.noise)
    elif args.kind == "sensor":
        pair = sensor_pair(args.seed, args.n, args.delta, args.dimension,
                           args.noise, missed=args.true_k, ghosts=0)
    else:
        pair = geo_pair(args.seed, args.n, args.delta, args.true_k, args.noise)
    return {
        "name": pair.name,
        "delta": pair.delta,
        "dimension": pair.dimension,
        "true_k": pair.true_k,
        "noise": pair.noise,
        "alice": [list(p) for p in pair.alice],
        "bob": [list(p) for p in pair.bob],
    }


def _load_workload(path: Path) -> dict:
    data = json.loads(path.read_text())
    for field in ("delta", "dimension", "alice", "bob"):
        if field not in data:
            raise ReproError(f"workload JSON missing field {field!r}")
    data["alice"] = [tuple(p) for p in data["alice"]]
    data["bob"] = [tuple(p) for p in data["bob"]]
    return data


def cmd_generate(args) -> int:
    payload = _generate(args)
    args.output.write_text(json.dumps(payload))
    print(f"wrote {args.kind} workload: n={len(payload['alice'])}/"
          f"{len(payload['bob'])}, delta={payload['delta']}, "
          f"d={payload['dimension']} -> {args.output}")
    return 0


def _select_variant(args) -> str:
    """Shared ``--adaptive``/``--rateless``/``--shards`` dispatch
    (reconcile and sync)."""
    picked = [
        flag for flag, on in (
            ("--adaptive", args.adaptive),
            ("--rateless", args.rateless),
            ("--shards", args.shards > 1),
        ) if on
    ]
    if len(picked) > 1:
        raise ReproError(
            f"{' and '.join(picked)} are mutually exclusive: pick one "
            "protocol variant"
        )
    if args.shards > 1:
        return "sharded"
    if args.rateless:
        return "rateless"
    return "adaptive" if args.adaptive else "one-round"


def _write_repaired(path: Path | None, result) -> None:
    """Shared ``--output`` handling: persist the repaired multiset."""
    if path is None:
        return
    path.write_text(
        json.dumps({"repaired": [list(p) for p in result.repaired]})
    )
    print(f"repaired set written to {path}")


def cmd_reconcile(args) -> int:
    data = _load_workload(args.workload)
    variant = _select_variant(args)
    config = ProtocolConfig(
        delta=data["delta"], dimension=data["dimension"], k=args.k,
        seed=args.seed, backend=args.backend, shards=args.shards,
        workers=args.workers, executor=args.executor,
        decode_strategy=args.decode_strategy,
    )
    if variant == "sharded":
        runner = reconcile_sharded
        protocol = f"sharded one-round ({args.shards} shards, {config.executor} executor)"
    elif variant == "adaptive":
        runner = reconcile_adaptive
        protocol = "adaptive 2-round"
    elif variant == "rateless":
        runner = reconcile_rateless
        protocol = "rateless streaming"
    else:
        runner = reconcile
        protocol = "one-round"
    result = runner(data["alice"], data["bob"], config)
    print(f"protocol : {protocol}")
    print(f"backend  : {config.backend}")
    print(f"message  : {result.transcript.describe()}")
    if args.shards > 1:
        print(f"levels   : {result.shard_levels} per shard "
              f"(coarsest cell side {2 ** result.level})")
    else:
        print(f"level    : {result.level} (cell side {2 ** result.level})")
    print(f"repair   : +{result.alice_surplus} centres, "
          f"-{result.bob_surplus} points")
    print(f"|S'_B|   : {len(result.repaired)}")
    _write_repaired(args.output, result)
    return 0


def cmd_estimate(args) -> int:
    data = _load_workload(args.workload)
    config = ProtocolConfig(
        delta=data["delta"], dimension=data["dimension"], k=args.k,
        seed=args.seed, backend=args.backend,
    )
    reconciler = AdaptiveReconciler(config)
    request = reconciler.bob_request(data["bob"])
    # Re-derive Alice's per-level view (the same computation alice_respond
    # performs before choosing the window).
    from repro.iblt.strata import StrataEstimator
    from repro.net.bits import BitReader

    reader = BitReader(request)
    reader.read_uint(8)
    reader.read_uint(8)
    reader.read_varint()
    print(f"{'level':>5} {'cell side':>10} {'est. difference':>16}")
    for level in reconciler.sampled_levels():
        bob_estimator = StrataEstimator.read_from(
            reader, reconciler._estimator_config(level)
        )
        mine = reconciler._build_estimator(data["alice"], level)
        estimate = mine.estimate_difference(bob_estimator)
        print(f"{level:>5} {2 ** level:>10} {estimate:>16}")
    return 0


def cmd_info(args) -> int:
    config = ProtocolConfig(delta=args.delta, dimension=args.dimension,
                            k=args.k)
    print(f"levels            : {len(config.sketch_levels)} "
          f"(0..{config.max_level})")
    print(f"cells per level   : {config.cells_per_level}")
    print(f"backends          : {', '.join(available_backends())} available")
    print(f"one-round message : ~{one_round_bits_estimate(config)} bits")
    print(f"lower bound       : {lower_bound_bits(args.k, args.delta, args.dimension)} bits")
    print(f"approx factor     : <= {approximation_factor(args.dimension):.0f} "
          f"(analysed worst case, O(d))")
    return 0


def cmd_serve(args) -> int:
    data = _load_workload(args.workload)
    config = ProtocolConfig(
        delta=data["delta"], dimension=data["dimension"], k=args.k,
        seed=args.seed, backend=args.backend, shards=args.shards,
        workers=args.shard_workers, executor=args.executor,
    )
    points = data["alice"]
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}")
        return 2
    core = None
    store_line = None
    if args.store_dir is not None:
        # Typed failures (missing/unwritable dir -> ConfigError, damaged
        # state -> StoreCorruptError) propagate to main()'s ReproError
        # handler: a clean one-line error and exit code 2, no traceback.
        store = DurableSketchStore.open(config, str(args.store_dir))
        if store.sketch.n_points == 0 and points:
            store.bulk_load(points)
            store_line = (
                f"store    : {args.store_dir} loaded {len(points)} points "
                f"(first boot; snapshot published)"
            )
        elif store.sketch.n_points != len(points):
            raise ConfigError(
                f"store at {args.store_dir} holds {store.sketch.n_points} "
                f"points but the workload has {len(points)} — refusing to "
                "serve inconsistent state (point a fresh --store-dir at a "
                "changed workload)"
            )
        else:
            recovery = store.recovery
            store_line = (
                f"store    : {args.store_dir} recovered from "
                f"{recovery.source} (generation {recovery.generation}, "
                f"{recovery.replayed_records} WAL records replayed, "
                f"{recovery.truncated_bytes} torn bytes truncated)"
            )
        core = ServerCore(config, points, store=store)

    async def run() -> None:
        # --workers 1 is the exact single-process server; N>1 pre-forks N
        # workers sharing one warmed copy-on-write core (serve/pool.py).
        # A store-backed core is recovered *before* either server exists,
        # so pool workers fork after recovery and inherit it CoW.
        if args.workers > 1:
            server = WorkerPoolServer(
                config if core is None else None,
                points if core is None else None,
                core=core, workers=args.workers,
                host=args.host, port=args.port,
                max_sessions=args.max_sessions, max_pending=args.max_pending,
                timeout=args.timeout, offload=args.offload,
            )
        else:
            server = ReconciliationServer(
                config if core is None else None,
                points if core is None else None,
                core=core, host=args.host, port=args.port,
                max_sessions=args.max_sessions, max_pending=args.max_pending,
                timeout=args.timeout, offload=args.offload,
            )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platforms without loop signal handlers keep Ctrl-C only
        async with server:
            host, port = server.address
            mode = (
                f"{args.workers} workers, {server.mode}"
                if args.workers > 1 else "single process"
            )
            print(f"serving {len(points)} points on {host}:{port} "
                  f"(k={args.k}, seed={args.seed}, shards={args.shards}, "
                  f"{mode}; "
                  f"variants: one-round, adaptive, sharded, rateless)",
                  flush=True)
            if store_line is not None:
                print(store_line, flush=True)
            waits = [asyncio.ensure_future(stop.wait())]
            if args.max_syncs is not None:
                waits.append(
                    asyncio.ensure_future(
                        server.wait_for_sessions(args.max_syncs)
                    )
                )
            else:
                waits.append(asyncio.ensure_future(server.serve_forever()))
            done, pending = await asyncio.wait(
                waits, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
            # Leaving the context manager drains in-flight sessions (the
            # pool SIGTERMs its workers, each draining up to the session
            # deadline) before the summary below.
        summary = server.summary()
        print(f"served   : {summary['sessions']} session(s), "
              f"{summary['ok']} ok, {summary['failed']} failed")
        print(f"shipped  : {summary['bytes_out']} bytes out, "
              f"{summary['bytes_in']} bytes in")

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    return 0


def cmd_sync(args) -> int:
    data = _load_workload(args.workload)
    variant = _select_variant(args)
    config = ProtocolConfig(
        delta=data["delta"], dimension=data["dimension"], k=args.k,
        seed=args.seed, backend=args.backend, shards=args.shards,
    )
    if args.retries > 1:
        policy = RetryPolicy(
            attempts=args.retries, deadline=args.retry_deadline,
            seed=args.seed,
        )
        result = asyncio.run(resilient_sync(
            args.host, args.port, config, data["bob"],
            variant=variant, timeout=args.timeout, policy=policy,
        ))
    else:
        result = sync_blocking(
            args.host, args.port, config, data["bob"],
            variant=variant, timeout=args.timeout,
        )
    print(f"synced against {args.host}:{args.port} ({variant})")
    if getattr(result, "resumed_from", None) is not None:
        print(f"resumed  : stream continued at increment "
              f"{result.resumed_from}")
    recovered = getattr(result, "recovered", None)
    if recovered is not None:
        print(f"server   : recovered from {recovered.get('source')} "
              f"(generation {recovered.get('generation')}, "
              f"{recovered.get('records')} WAL records, "
              f"{recovered.get('n_points')} points)")
    print(f"message  : {result.transcript.describe()}")
    print(f"repair   : +{result.alice_surplus} centres, "
          f"-{result.bob_surplus} points")
    print(f"|S'_B|   : {len(result.repaired)}")
    _write_repaired(args.output, result)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "wire_codec", "vector") == "scalar":
        # Process-wide diagnostic switch: every payload this run touches
        # goes through the field-at-a-time reference (same bytes).
        codec.FORCE_SCALAR = True
    handlers = {
        "generate": cmd_generate,
        "reconcile": cmd_reconcile,
        "estimate": cmd_estimate,
        "info": cmd_info,
        "serve": cmd_serve,
        "sync": cmd_sync,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
