"""City-like geospatial workload: power-law clusters with GPS jitter.

Stands in for the geographic datasets robust-reconciliation papers evaluate
on: two services hold the same POI database, coordinates differ by
device/geocoder jitter, and a handful of POIs exist on only one side.
Cluster populations follow a Zipf-like law so a few "cities" dominate —
the skew that stresses per-cell occupancy handling.
"""

from __future__ import annotations

import random

from repro.errors import ConfigError
from repro.workloads.base import WorkloadPair, clamp
from repro.workloads.synthetic import uniform_points


def geo_pair(
    seed: int,
    n: int,
    delta: int,
    true_k: int,
    noise: float,
    cities: int = 12,
    zipf_exponent: float = 1.2,
    city_spread: float = 0.01,
) -> WorkloadPair:
    """Generate a 2-D POI workload.

    Parameters
    ----------
    n:
        Shared POI count.
    cities:
        Number of cluster centres.
    zipf_exponent:
        Cluster-population skew (> 1 means a few big cities).
    city_spread:
        Within-city sigma as a fraction of ``delta``.
    noise:
        Per-coordinate jitter between the two services' copies.
    """
    if cities < 1:
        raise ConfigError(f"cities must be >= 1, got {cities}")
    if zipf_exponent <= 0:
        raise ConfigError(f"zipf_exponent must be > 0, got {zipf_exponent}")
    dimension = 2
    rng = random.Random(seed)
    centres = uniform_points(rng, cities, delta, dimension)
    weights = [1.0 / (rank + 1) ** zipf_exponent for rank in range(cities)]
    total = sum(weights)
    weights = [w / total for w in weights]
    sigma = max(1.0, city_spread * delta)

    def draw_city():
        roll = rng.random()
        acc = 0.0
        for index, weight in enumerate(weights):
            acc += weight
            if roll <= acc:
                return centres[index]
        return centres[-1]

    shared = [
        tuple(clamp(int(round(rng.gauss(c, sigma))), delta) for c in draw_city())
        for _ in range(n)
    ]
    alice = list(shared)
    bob = [
        tuple(clamp(int(round(rng.gauss(c, noise))), delta) for c in point)
        if noise > 0 else point
        for point in shared
    ]
    alice.extend(uniform_points(rng, true_k, delta, dimension))
    bob.extend(uniform_points(rng, true_k, delta, dimension))
    return WorkloadPair(
        name="geo",
        alice=alice,
        bob=bob,
        delta=delta,
        dimension=dimension,
        true_k=true_k,
        noise=noise,
        params={"cities": cities, "zipf": zipf_exponent, "seed": seed},
    )
