"""Uniform and clustered synthetic workloads.

The central generator is :func:`perturbed_pair`: Alice holds a base set,
Bob holds noisy copies of the same base, and each side additionally holds
``true_k`` points the other does not have in any form.  Every benchmark
regime in the reconstructed evaluation is a parameterisation of this shape.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.emd.metrics import Point
from repro.errors import ConfigError
from repro.workloads.base import WorkloadPair, clamp

NOISE_MODELS = ("uniform", "gaussian", "none")


def uniform_points(
    rng: random.Random, n: int, delta: int, dimension: int
) -> list[Point]:
    """``n`` points uniform over the grid."""
    return [
        tuple(rng.randrange(delta) for _ in range(dimension)) for _ in range(n)
    ]


def clustered_points(
    rng: random.Random,
    n: int,
    delta: int,
    dimension: int,
    clusters: int = 10,
    spread: float = 0.02,
) -> list[Point]:
    """``n`` points from a Gaussian mixture with ``clusters`` components.

    ``spread`` is the per-coordinate standard deviation as a fraction of
    ``delta``.
    """
    if clusters < 1:
        raise ConfigError(f"clusters must be >= 1, got {clusters}")
    centres = uniform_points(rng, clusters, delta, dimension)
    sigma = max(1.0, spread * delta)
    points = []
    for _ in range(n):
        centre = centres[rng.randrange(clusters)]
        points.append(
            tuple(
                clamp(int(round(rng.gauss(c, sigma))), delta) for c in centre
            )
        )
    return points


def _noisy_copy(
    rng: random.Random, point: Point, delta: int, noise: float, model: str
) -> Point:
    if model == "none" or noise == 0:
        return point
    if model == "uniform":
        radius = int(noise)
        return tuple(
            clamp(c + rng.randint(-radius, radius), delta) for c in point
        )
    return tuple(
        clamp(int(round(rng.gauss(c, noise))), delta) for c in point
    )


def perturbed_pair(
    seed: int,
    n: int,
    delta: int,
    dimension: int,
    true_k: int,
    noise: float,
    noise_model: str = "uniform",
    base: str = "uniform",
    clusters: int = 10,
    spread: float = 0.02,
) -> WorkloadPair:
    """The canonical robust-reconciliation workload.

    Parameters
    ----------
    seed:
        Generator seed (deterministic workloads per seed).
    n:
        Shared base-set size; both final sets have ``n + true_k`` points.
    delta, dimension:
        Universe geometry.
    true_k:
        Genuinely different points per side.
    noise:
        Coordinate noise magnitude applied to Bob's copies (radius for
        ``uniform``, sigma for ``gaussian``).
    noise_model:
        One of ``"uniform"``, ``"gaussian"``, ``"none"``.
    base:
        Base-set distribution: ``"uniform"`` or ``"clustered"``.
    """
    if noise_model not in NOISE_MODELS:
        raise ConfigError(
            f"noise_model must be one of {NOISE_MODELS}, got {noise_model!r}"
        )
    if true_k < 0 or n < 0:
        raise ConfigError("n and true_k must be non-negative")
    rng = random.Random(seed)
    if base == "clustered":
        shared = clustered_points(rng, n, delta, dimension, clusters, spread)
    elif base == "uniform":
        shared = uniform_points(rng, n, delta, dimension)
    else:
        raise ConfigError(f"base must be 'uniform' or 'clustered', got {base!r}")

    alice = list(shared)
    bob = [
        _noisy_copy(rng, point, delta, noise, noise_model) for point in shared
    ]
    alice.extend(uniform_points(rng, true_k, delta, dimension))
    bob.extend(uniform_points(rng, true_k, delta, dimension))
    return WorkloadPair(
        name=f"perturbed-{base}",
        alice=alice,
        bob=bob,
        delta=delta,
        dimension=dimension,
        true_k=true_k,
        noise=noise,
        params={"noise_model": noise_model, "seed": seed},
    )


def clustered_pair(
    seed: int,
    n: int,
    delta: int,
    dimension: int,
    true_k: int,
    noise: float,
    clusters: int = 10,
    spread: float = 0.02,
) -> WorkloadPair:
    """Clustered-base convenience wrapper around :func:`perturbed_pair`."""
    return perturbed_pair(
        seed, n, delta, dimension, true_k, noise,
        base="clustered", clusters=clusters, spread=spread,
    )


def deduplicate(points: Sequence[Point], rng: random.Random, delta: int) -> list[Point]:
    """Re-draw duplicates until all points are distinct.

    The exact baselines require set semantics; benchmark workloads pass
    through this to make comparisons well-defined.
    """
    seen: set[Point] = set()
    result: list[Point] = []
    dimension = len(points[0]) if points else 0
    for point in points:
        while point in seen:
            point = tuple(rng.randrange(delta) for _ in range(dimension))
        seen.add(point)
        result.append(point)
    return result
