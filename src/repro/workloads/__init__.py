"""Workload generators for the evaluation harness.

The paper's testbed datasets are not available offline, so each generator is
a synthetic stand-in engineered to exercise the same regime (the
substitution is documented per experiment in ``EXPERIMENTS.md``):

* :func:`~repro.workloads.synthetic.perturbed_pair` — the canonical robust
  reconciliation instance: a shared base set, coordinate noise on Bob's
  copies, ``k`` genuinely different points per side.
* :func:`~repro.workloads.synthetic.clustered_pair` — Gaussian-mixture
  spatial clusters (database/geo-style skew).
* :func:`~repro.workloads.sensors.sensor_pair` — two sensors observing the
  same objects with calibration noise plus missed/ghost detections.
* :func:`~repro.workloads.geo.geo_pair` — power-law city-like clusters in
  2-D with GPS-scale jitter.
* :func:`~repro.workloads.adversarial.boundary_pair` — points sitting on
  deterministic grid boundaries (defeats unshifted quantisation).
"""

from repro.workloads.adversarial import boundary_pair
from repro.workloads.base import WorkloadPair
from repro.workloads.geo import geo_pair
from repro.workloads.sensors import sensor_pair
from repro.workloads.synthetic import (
    clustered_pair,
    clustered_points,
    perturbed_pair,
    uniform_points,
)

__all__ = [
    "WorkloadPair",
    "boundary_pair",
    "clustered_pair",
    "clustered_points",
    "geo_pair",
    "perturbed_pair",
    "sensor_pair",
    "uniform_points",
]
