"""The paper's motivating scenario: two sensors observing one scene.

Both sensors measure the same physical objects with independent calibration
noise; each also misses a few objects the other saw and hallucinates a few
ghost detections.  Reconciliation should ship (approximately) only the
missed/ghost objects — never the ``n`` noisy re-measurements.
"""

from __future__ import annotations

import random

from repro.errors import ConfigError
from repro.workloads.base import WorkloadPair, clamp
from repro.workloads.synthetic import uniform_points


def sensor_pair(
    seed: int,
    n_objects: int,
    delta: int,
    dimension: int,
    sensor_noise: float,
    missed: int,
    ghosts: int,
) -> WorkloadPair:
    """Generate the two sensors' detection sets.

    Parameters
    ----------
    seed:
        Generator seed.
    n_objects:
        Objects both sensors track.
    sensor_noise:
        Per-coordinate Gaussian sigma of each sensor's measurement.
    missed:
        Objects each sensor *additionally* has that the other missed
        (``missed`` per side, disjoint).
    ghosts:
        Spurious detections per sensor (uniform clutter).

    Both sets end with ``n_objects + missed + ghosts`` detections, so EMD
    between them is well-defined.
    """
    if min(n_objects, missed, ghosts) < 0:
        raise ConfigError("n_objects, missed and ghosts must be non-negative")
    if sensor_noise < 0:
        raise ConfigError(f"sensor_noise must be >= 0, got {sensor_noise}")
    rng = random.Random(seed)
    objects = uniform_points(rng, n_objects, delta, dimension)

    def observe(point):
        return tuple(
            clamp(int(round(rng.gauss(c, sensor_noise))), delta) for c in point
        )

    alice = [observe(obj) for obj in objects]
    bob = [observe(obj) for obj in objects]
    # Objects only one sensor caught.
    alice.extend(observe(obj) for obj in uniform_points(rng, missed, delta, dimension))
    bob.extend(observe(obj) for obj in uniform_points(rng, missed, delta, dimension))
    # Clutter.
    alice.extend(uniform_points(rng, ghosts, delta, dimension))
    bob.extend(uniform_points(rng, ghosts, delta, dimension))
    return WorkloadPair(
        name="sensor",
        alice=alice,
        bob=bob,
        delta=delta,
        dimension=dimension,
        true_k=missed + ghosts,
        noise=sensor_noise,
        params={"n_objects": n_objects, "missed": missed, "ghosts": ghosts,
                "seed": seed},
    )
