"""Common shape of every generated workload."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.emd.metrics import Point
from repro.errors import ConfigError


def clamp(value: int, delta: int) -> int:
    """Clamp a coordinate back onto the grid ``[0, delta)``."""
    return max(0, min(delta - 1, value))


@dataclass
class WorkloadPair:
    """One reconciliation instance plus its ground truth.

    Attributes
    ----------
    name:
        Generator tag (used in benchmark tables).
    alice, bob:
        The two point multisets.
    delta, dimension:
        Universe geometry.
    true_k:
        Number of genuinely different points per side (the workload's
        ground-truth budget; the protocol's ``k`` should be ≥ this).
    noise:
        Magnitude of the coordinate noise applied to matched pairs.
    params:
        Any further generator-specific parameters (recorded for tables).
    """

    name: str
    alice: list[Point]
    bob: list[Point]
    delta: int
    dimension: int
    true_k: int
    noise: float
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.delta < 2:
            raise ConfigError(f"delta must be >= 2, got {self.delta}")
        for label, points in (("alice", self.alice), ("bob", self.bob)):
            for point in points:
                if len(point) != self.dimension:
                    raise ConfigError(
                        f"{label} point {point} has wrong dimension"
                    )
                for coordinate in point:
                    if not 0 <= coordinate < self.delta:
                        raise ConfigError(
                            f"{label} coordinate {coordinate} outside grid"
                        )

    @property
    def n(self) -> int:
        """Size of Alice's set (== Bob's for all built-in generators)."""
        return len(self.alice)

    def describe(self) -> str:
        """One-line summary for benchmark logs."""
        return (
            f"{self.name}: n={len(self.alice)}/{len(self.bob)}, "
            f"delta={self.delta}, d={self.dimension}, "
            f"true_k={self.true_k}, noise={self.noise}"
        )
