"""Adversarial workload: noise straddling deterministic grid boundaries.

Every point sits exactly on a multiple of the target cell width, and the
noise is ±1.  Under an *unshifted* grid each noisy pair falls into
different cells with probability ~1/2 per coordinate — so a single-scale,
deterministic quantiser sees ~n differences no matter how small the noise.
A randomly shifted grid splits each pair with probability only
``noise / cell_side``, which is the property the paper's analysis uses.
This is the workload behind the random-shift ablation (A1).
"""

from __future__ import annotations

import random

from repro.errors import ConfigError
from repro.workloads.base import WorkloadPair, clamp
from repro.workloads.synthetic import uniform_points


def boundary_pair(
    seed: int,
    n: int,
    delta: int,
    dimension: int,
    true_k: int,
    cell_width: int,
) -> WorkloadPair:
    """Points on multiples of ``cell_width`` with ±1 jitter on Bob's side.

    ``cell_width`` must be a power of two ≥ 2 (a grid level's cell side).
    """
    if cell_width < 2 or cell_width & (cell_width - 1):
        raise ConfigError(
            f"cell_width must be a power of two >= 2, got {cell_width}"
        )
    if cell_width >= delta:
        raise ConfigError("cell_width must be smaller than delta")
    rng = random.Random(seed)
    boundaries = delta // cell_width

    def boundary_point():
        return tuple(
            clamp(rng.randrange(1, boundaries) * cell_width, delta)
            for _ in range(dimension)
        )

    shared = [boundary_point() for _ in range(n)]
    alice = list(shared)
    bob = [
        tuple(clamp(c + rng.choice((-1, 0, 1)), delta) for c in point)
        for point in shared
    ]
    alice.extend(uniform_points(rng, true_k, delta, dimension))
    bob.extend(uniform_points(rng, true_k, delta, dimension))
    return WorkloadPair(
        name="boundary",
        alice=alice,
        bob=bob,
        delta=delta,
        dimension=dimension,
        true_k=true_k,
        noise=1.0,
        params={"cell_width": cell_width, "seed": seed},
    )
