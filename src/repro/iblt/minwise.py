"""Min-wise difference estimation — the strata estimator's classical rival.

Eppstein et al. (2011) compare their strata estimator against min-wise
sketches: keep the ``s`` smallest hash values of your key set; the overlap
between two parties' sketches estimates the Jaccard similarity ``J``, and

    |A △ B|  ≈  (1 − J) / (1 + J) · (|A| + |B|)

converts it into a difference estimate.  Min-wise is accurate when the
difference is a large *fraction* of the sets, and degrades for small
relative differences (exactly where strata shines) — the A4 ablation
benchmark reproduces that trade-off.

The sketch is one message of ``s`` hash values (plus the set size), and —
unlike the strata estimator — its size does not depend on the key width.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConfigError, SerializationError
from repro.iblt.hashing import hash_with_salt
from repro.net.bits import BitReader, BitWriter


class MinwiseEstimator:
    """One party's min-wise sketch (``s`` smallest 64-bit key hashes).

    Parameters
    ----------
    sketch_size:
        Number of minima kept (the sketch's accuracy knob).
    seed:
        Public-coin seed; both parties must match.
    """

    def __init__(self, sketch_size: int = 256, seed: int = 0):
        if sketch_size < 8:
            raise ConfigError(
                f"sketch_size must be >= 8, got {sketch_size}"
            )
        self.sketch_size = sketch_size
        self.seed = seed
        self._hashes: set[int] = set()
        self.count = 0

    def insert(self, key: int) -> None:
        """Add one key (duplicates within a party are the caller's bug)."""
        self.count += 1
        value = hash_with_salt(key, self.seed ^ 0x31415)
        if len(self._hashes) < self.sketch_size:
            self._hashes.add(value)
            return
        worst = max(self._hashes)
        if value < worst and value not in self._hashes:
            self._hashes.discard(worst)
            self._hashes.add(value)

    def insert_all(self, keys: Iterable[int]) -> None:
        """Add every key of an iterable."""
        for key in keys:
            self.insert(key)

    def minima(self) -> list[int]:
        """The kept hash values, ascending."""
        return sorted(self._hashes)

    def estimate_difference(self, other: "MinwiseEstimator") -> int:
        """Estimate ``|self_keys △ other_keys|`` from sketch overlap.

        Uses the standard single-set resemblance estimator: merge both
        sketches, keep the ``s`` smallest of the union, and count how many
        of those appear in both sketches.
        """
        if (self.sketch_size, self.seed) != (other.sketch_size, other.seed):
            raise ConfigError("min-wise sketches built with different configs")
        if self.count == 0 and other.count == 0:
            return 0
        union = sorted(set(self._hashes) | set(other._hashes))
        smallest = union[: self.sketch_size]
        if not smallest:
            return 0
        shared = sum(
            1 for value in smallest
            if value in self._hashes and value in other._hashes
        )
        jaccard = shared / len(smallest)
        total = self.count + other.count
        estimate = (1 - jaccard) / (1 + jaccard) * total
        return max(0, int(round(estimate)))

    # ------------------------------------------------------------------ wire

    def write_to(self, writer: BitWriter) -> None:
        """Serialise count + minima (64 bits each)."""
        writer.write_varint(self.count)
        minima = self.minima()
        writer.write_varint(len(minima))
        for value in minima:
            writer.write_uint(value, 64)

    def to_bytes(self) -> bytes:
        """Serialise to a standalone byte string."""
        writer = BitWriter()
        self.write_to(writer)
        return writer.getvalue()

    @classmethod
    def read_from(
        cls, reader: BitReader, sketch_size: int, seed: int
    ) -> "MinwiseEstimator":
        """Deserialise a sketch written with :meth:`write_to`."""
        estimator = cls(sketch_size, seed)
        estimator.count = reader.read_varint()
        n_minima = reader.read_varint()
        if n_minima > sketch_size:
            raise SerializationError(
                f"sketch claims {n_minima} minima, size is {sketch_size}"
            )
        estimator._hashes = {reader.read_uint(64) for _ in range(n_minima)}
        return estimator

    @classmethod
    def from_bytes(cls, data: bytes, sketch_size: int, seed: int) -> "MinwiseEstimator":
        """Deserialise from a standalone byte string."""
        reader = BitReader(data)
        estimator = cls.read_from(reader, sketch_size, seed)
        reader.expect_end()
        return estimator

    def serialized_bits(self) -> int:
        """Measured wire size in bits."""
        writer = BitWriter()
        self.write_to(writer)
        return writer.bit_length
