"""Deterministic hash functions shared by both protocol parties.

All protocols in this library assume *public coins*: Alice and Bob derive
identical hash functions from a shared seed, so no bits are spent
communicating them.  Everything here is pure-Python, deterministic across
platforms and processes (no reliance on ``hash()``), and reasonably fast.

The workhorse is :func:`splitmix64`, a well-known 64-bit finaliser with good
avalanche behaviour.  On top of it we build:

* :func:`checksum64` — key checksums for IBLT cells,
* :class:`HashFamily` — ``q`` salted cell-index functions for a partitioned
  IBLT,
* :class:`TabulationHash` — simple tabulation hashing, used where stronger
  independence matters (the strata estimator's stratum assignment).
"""

from __future__ import annotations

import random

from repro.errors import BackendUnavailableError, ConfigError

try:  # soft dependency: only the bulk (array) paths use numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

MASK64 = (1 << 64) - 1

_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def splitmix64(value: int) -> int:
    """Mix a 64-bit integer through the splitmix64 finaliser.

    Values wider than 64 bits are first folded down by XOR-ing 64-bit limbs,
    so arbitrarily wide packed keys can be hashed directly.
    """
    if value < 0:
        raise ConfigError(f"splitmix64 input must be non-negative, got {value}")
    while value > MASK64:
        value = (value & MASK64) ^ (value >> 64)
    z = (value + _GOLDEN) & MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & MASK64
    return z ^ (z >> 31)


def hash_with_salt(value: int, salt: int) -> int:
    """A salted 64-bit hash: mix the salt in before and after the finaliser."""
    return splitmix64(splitmix64(salt) ^ splitmix64(value))


def checksum64(key: int, salt: int, width_bits: int = 32) -> int:
    """Checksum of a key, truncated to ``width_bits`` bits.

    IBLT cells store the XOR of the checksums of their keys; a cell whose
    ``checkSum`` matches the checksum of its ``keySum`` holds (w.h.p.) exactly
    one key.  32 bits keeps false-peel probability per decode below
    ``items / 2^32``.
    """
    if not 1 <= width_bits <= 64:
        raise ConfigError(f"checksum width must be in [1, 64], got {width_bits}")
    return hash_with_salt(key, salt ^ 0xC0FFEE) & ((1 << width_bits) - 1)


class HashFamily:
    """``q`` independent cell-index functions for a partitioned IBLT.

    The table's ``m`` cells are split into ``q`` equal partitions and hash
    function ``i`` maps keys into partition ``i`` only.  Partitioning
    guarantees the ``q`` cell indices of a key are distinct, which the
    peeling analysis assumes.

    Parameters
    ----------
    q:
        Number of hash functions (hyperedge cardinality).
    cells:
        Total number of cells ``m``; must be divisible by ``q``.
    seed:
        Shared public-coin seed.
    """

    def __init__(self, q: int, cells: int, seed: int):
        if q < 2:
            raise ConfigError(f"need at least 2 hash functions, got {q}")
        if cells % q != 0:
            raise ConfigError(f"cells ({cells}) must be divisible by q ({q})")
        if cells <= 0:
            raise ConfigError(f"cells must be positive, got {cells}")
        self.q = q
        self.cells = cells
        self.seed = seed
        self._partition = cells // q
        self._salts = tuple(
            hash_with_salt(i, seed ^ 0xAB1E) for i in range(q)
        )
        # Pre-mix the salts so the per-key work is one splitmix64 of the key
        # plus one per index (identical outputs to hash_with_salt).
        self._premixed = tuple(splitmix64(salt) for salt in self._salts)

    @property
    def premixed_salts(self) -> tuple[int, ...]:
        """The per-function pre-mixed salts (``splitmix64`` of each salt).

        Index ``i`` of a key is ``i * (cells // q) +
        splitmix64(premixed_salts[i] ^ splitmix64(key)) % (cells // q)``;
        vectorized backends reproduce cell placement from these constants.
        """
        return self._premixed

    def indices(self, key: int) -> tuple[int, ...]:
        """Return the ``q`` distinct cell indices of ``key``."""
        return self.indices_from_mix(splitmix64(key))

    def indices_from_mix(self, key_mix: int) -> tuple[int, ...]:
        """Indices from a precomputed ``splitmix64(key)`` (hot-path form)."""
        partition = self._partition
        return tuple(
            i * partition + splitmix64(premixed ^ key_mix) % partition
            for i, premixed in enumerate(self._premixed)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashFamily):
            return NotImplemented
        return (self.q, self.cells, self.seed) == (other.q, other.cells, other.seed)

    def __repr__(self) -> str:
        return f"HashFamily(q={self.q}, cells={self.cells}, seed={self.seed:#x})"


class TabulationHash:
    """Simple tabulation hashing over 64-bit inputs, 8 bits at a time.

    3-independent (and practically much stronger), deterministic given the
    seed.  Used where hash independence shows up in estimator variance.
    """

    def __init__(self, seed: int):
        rng = random.Random(seed)
        self.seed = seed
        # Immutable tables, filled in one pass (no list build + convert).
        # The draw order is load-bearing: one getrandbits(64) per entry,
        # row-major, keeps the values (and thus strata wire bytes) identical
        # to every previously recorded transcript.
        self._tables = tuple(
            tuple(rng.getrandbits(64) for _ in range(256)) for _ in range(8)
        )

    def __call__(self, value: int) -> int:
        """Hash a non-negative integer (wider inputs are folded to 64 bits)."""
        if value < 0:
            raise ConfigError(f"input must be non-negative, got {value}")
        while value > MASK64:
            value = (value & MASK64) ^ (value >> 64)
        result = 0
        for i in range(8):
            result ^= self._tables[i][(value >> (8 * i)) & 0xFF]
        return result

    def hash_many(self, values: "_np.ndarray") -> "_np.ndarray":
        """Hash a whole uint64 array (bit-identical to per-key ``__call__``).

        Eight table-lookup gathers replace the eight Python ops per key;
        the lookup tables are mirrored into one ``(8, 256)`` uint64 array
        lazily on first use.  Callers gate on numpy availability.
        """
        if _np is None:  # pragma: no cover - callers gate on numpy
            raise BackendUnavailableError("TabulationHash.hash_many requires numpy")
        tables = getattr(self, "_np_tables", None)
        if tables is None:
            tables = _np.array(self._tables, dtype=_np.uint64)
            self._np_tables = tables
        values = _np.asarray(values, dtype=_np.uint64)
        result = _np.zeros(values.shape, dtype=_np.uint64)
        mask = _np.uint64(0xFF)
        for i in range(8):
            result ^= tables[i][(values >> _np.uint64(8 * i)) & mask]
        return result


def trailing_zeros(value: int, limit: int) -> int:
    """Number of trailing zero bits of ``value``, capped at ``limit``.

    Used to assign items to geometric strata: stratum ``i`` captures a
    ``2^-(i+1)`` fraction of the universe.
    """
    if value == 0:
        return limit
    count = (value & -value).bit_length() - 1  # position of lowest set bit
    return count if count < limit else limit


def trailing_zeros_many(values: "_np.ndarray", limit: int) -> "_np.ndarray":
    """Vectorized :func:`trailing_zeros` over a uint64 array.

    The lowest set bit ``v & (~v + 1)`` is an exact power of two, which
    float64 represents exactly at every exponent up to 2^63, so ``log2``
    recovers its position without precision loss.  Zeros map to ``limit``,
    exactly like the scalar reference.  Callers gate on numpy availability.
    """
    if _np is None:  # pragma: no cover - callers gate on numpy
        raise BackendUnavailableError("trailing_zeros_many requires numpy")
    values = _np.asarray(values, dtype=_np.uint64)
    lowest = values & (~values + _np.uint64(1))
    lowest[values == 0] = 1  # placeholder; overwritten by the zero mask below
    positions = _np.log2(lowest.astype(_np.float64)).astype(_np.int64)
    positions = _np.minimum(positions, limit)
    positions[values == 0] = limit
    return positions
