"""The Invertible Bloom Lookup Table (IBLT).

An IBLT with ``m`` cells and ``q`` hash functions stores a multiset of keys
such that, after *subtracting* another party's table built with the same
public coins, the symmetric difference of the two key sets can be recovered
by peeling (see :mod:`repro.iblt.decode`) whenever the difference is modestly
smaller than ``m``.

Cells hold three fields, exactly as in Goodrich & Mitzenmacher (2011) and the
Difference Digest of Eppstein et al. (2011):

``count``
    Signed number of keys hashed into the cell (insertions minus deletions).
``key_sum``
    XOR of all keys hashed into the cell (keys are ``key_bits``-wide ints).
``check_sum``
    XOR of a salted checksum of each key; guards peeling against cells whose
    ``count`` is ±1 only by coincidence.

The contract required by every caller in this library: **within one party's
table each key is inserted at most once.**  The robust protocol meets it with
occurrence-indexed cell keys; the exact baselines insert set elements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, SerializationError
from repro.iblt.hashing import HashFamily, checksum64, splitmix64
from repro.net.bits import BitReader, BitWriter

#: Asymptotic peeling thresholds for q-regular random hypergraphs: a table
#: with m cells decodes w.h.p. while the number of stored keys stays below
#: ``threshold(q) * m``.  (Molloy 2004 / Goodrich-Mitzenmacher 2011.)
PEELING_THRESHOLDS = {
    3: 0.818,
    4: 0.772,
    5: 0.701,
    6: 0.637,
}

#: Default safety factor applied below the asymptotic threshold; finite
#: tables need headroom (the threshold is sharp only as m -> infinity).
DEFAULT_SAFETY = 0.85


def recommended_cells(expected_diff: int, q: int = 4, safety: float = DEFAULT_SAFETY) -> int:
    """Cells needed to decode ``expected_diff`` keys w.h.p.

    Rounds up to a multiple of ``q`` (partitioned hashing) and never returns
    fewer than ``8 * q`` cells so tiny tables stay decodable.
    """
    if expected_diff < 0:
        raise ConfigError(f"expected_diff must be non-negative, got {expected_diff}")
    if q not in PEELING_THRESHOLDS:
        raise ConfigError(
            f"q must be one of {sorted(PEELING_THRESHOLDS)}, got {q}"
        )
    if not 0 < safety <= 1:
        raise ConfigError(f"safety must be in (0, 1], got {safety}")
    load = PEELING_THRESHOLDS[q] * safety
    cells = max(8 * q, int(expected_diff / load) + 1)
    return ((cells + q - 1) // q) * q


@dataclass(frozen=True)
class IBLTConfig:
    """Shared (public-coin) parameters of an IBLT.

    Both parties must construct their tables from an identical config; the
    config itself is never transmitted.
    """

    cells: int
    q: int = 4
    key_bits: int = 64
    checksum_bits: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.q < 2:
            raise ConfigError(f"q must be >= 2, got {self.q}")
        if self.cells <= 0 or self.cells % self.q != 0:
            raise ConfigError(
                f"cells must be a positive multiple of q={self.q}, got {self.cells}"
            )
        if self.key_bits <= 0:
            raise ConfigError(f"key_bits must be positive, got {self.key_bits}")
        if not 1 <= self.checksum_bits <= 64:
            raise ConfigError(
                f"checksum_bits must be in [1, 64], got {self.checksum_bits}"
            )

    @property
    def capacity(self) -> int:
        """Nominal number of difference keys this table is sized to decode."""
        threshold = PEELING_THRESHOLDS.get(self.q, PEELING_THRESHOLDS[4])
        return int(self.cells * threshold * DEFAULT_SAFETY)

    def hash_family(self) -> HashFamily:
        """The cell-index hash family implied by this config."""
        return HashFamily(self.q, self.cells, self.seed)


class IBLT:
    """A mutable IBLT instance.

    Parameters
    ----------
    config:
        Shared parameters (see :class:`IBLTConfig`).

    Notes
    -----
    ``subtract`` produces the Alice-minus-Bob table whose peeling yields the
    two-sided symmetric difference: keys with net count ``+1`` belong only to
    the minuend (Alice), ``-1`` only to the subtrahend (Bob).
    """

    __slots__ = (
        "config", "_hashes", "counts", "key_sums", "check_sums",
        "_check_premix", "_check_mask",
    )

    def __init__(self, config: IBLTConfig):
        self.config = config
        self._hashes = config.hash_family()
        self.counts = [0] * config.cells
        self.key_sums = [0] * config.cells
        self.check_sums = [0] * config.cells
        # Shared-mix checksum constants (same value as checksum64 computes).
        self._check_premix = splitmix64(config.seed ^ 0xC0FFEE)
        self._check_mask = (1 << config.checksum_bits) - 1

    @property
    def hashes(self) -> HashFamily:
        """The cell-index hash family used by this table."""
        return self._hashes

    def _check_key(self, key: int) -> None:
        if key < 0:
            raise ValueError(f"keys must be non-negative, got {key}")
        if key.bit_length() > self.config.key_bits:
            raise ValueError(
                f"key {key} exceeds configured key width "
                f"({key.bit_length()} > {self.config.key_bits} bits)"
            )

    def _update(self, key: int, delta: int) -> None:
        self._check_key(key)
        key_mix = splitmix64(key)
        check = splitmix64(self._check_premix ^ key_mix) & self._check_mask
        for index in self._hashes.indices_from_mix(key_mix):
            self.counts[index] += delta
            self.key_sums[index] ^= key
            self.check_sums[index] ^= check

    def insert(self, key: int) -> None:
        """Add one key to the table."""
        self._update(key, +1)

    def delete(self, key: int) -> None:
        """Remove one key from the table (counts may go negative)."""
        self._update(key, -1)

    def insert_all(self, keys) -> None:
        """Insert every key of an iterable."""
        for key in keys:
            self.insert(key)

    def delete_all(self, keys) -> None:
        """Delete every key of an iterable."""
        for key in keys:
            self.delete(key)

    def subtract(self, other: "IBLT") -> "IBLT":
        """Return a new table equal to ``self - other`` cell-wise.

        Both tables must share an identical config (same public coins).
        """
        if self.config != other.config:
            raise ConfigError("cannot subtract IBLTs with different configs")
        result = IBLT(self.config)
        for i in range(self.config.cells):
            result.counts[i] = self.counts[i] - other.counts[i]
            result.key_sums[i] = self.key_sums[i] ^ other.key_sums[i]
            result.check_sums[i] = self.check_sums[i] ^ other.check_sums[i]
        return result

    def is_empty(self) -> bool:
        """True when every cell is zero (sets were identical)."""
        return (
            all(c == 0 for c in self.counts)
            and all(k == 0 for k in self.key_sums)
            and all(s == 0 for s in self.check_sums)
        )

    def nonzero_cells(self) -> int:
        """Number of cells with any nonzero field (decode-failure diagnostic)."""
        return sum(
            1
            for count, key, check in zip(self.counts, self.key_sums, self.check_sums)
            if count or key or check
        )

    def cell_is_pure(self, index: int) -> int:
        """Return ``+1``/``-1`` if cell ``index`` holds exactly one key from
        the corresponding side (checksum-verified), else ``0``."""
        count = self.counts[index]
        if count not in (1, -1):
            return 0
        key = self.key_sums[index]
        expected = checksum64(key, self.config.seed, self.config.checksum_bits)
        if self.check_sums[index] != expected:
            return 0
        return count

    def copy(self) -> "IBLT":
        """Deep copy (used by the decoder, which peels destructively)."""
        clone = IBLT(self.config)
        clone.counts = list(self.counts)
        clone.key_sums = list(self.key_sums)
        clone.check_sums = list(self.check_sums)
        return clone

    # ------------------------------------------------------------------ wire

    def write_to(self, writer: BitWriter) -> None:
        """Serialise cell contents (the config travels via public coins)."""
        key_bits = self.config.key_bits
        check_bits = self.config.checksum_bits
        for count, key, check in zip(self.counts, self.key_sums, self.check_sums):
            writer.write_svarint(count)
            writer.write_uint(key, key_bits)
            writer.write_uint(check, check_bits)

    def to_bytes(self) -> bytes:
        """Serialise to a standalone byte string."""
        writer = BitWriter()
        self.write_to(writer)
        return writer.getvalue()

    @classmethod
    def read_from(cls, reader: BitReader, config: IBLTConfig) -> "IBLT":
        """Deserialise a table previously written with :meth:`write_to`."""
        table = cls(config)
        for i in range(config.cells):
            table.counts[i] = reader.read_svarint()
            table.key_sums[i] = reader.read_uint(config.key_bits)
            table.check_sums[i] = reader.read_uint(config.checksum_bits)
        return table

    @classmethod
    def from_bytes(cls, data: bytes, config: IBLTConfig) -> "IBLT":
        """Deserialise from a standalone byte string."""
        reader = BitReader(data)
        table = cls.read_from(reader, config)
        try:
            reader.expect_end()
        except SerializationError as exc:
            raise SerializationError(f"IBLT payload has trailing data: {exc}") from exc
        return table

    def serialized_bits(self) -> int:
        """Measured wire size in bits (varint counts make this data-dependent)."""
        writer = BitWriter()
        self.write_to(writer)
        return writer.bit_length
