"""The Invertible Bloom Lookup Table (IBLT).

An IBLT with ``m`` cells and ``q`` hash functions stores a multiset of keys
such that, after *subtracting* another party's table built with the same
public coins, the symmetric difference of the two key sets can be recovered
by peeling (see :mod:`repro.iblt.decode`) whenever the difference is modestly
smaller than ``m``.

Cells hold three fields, exactly as in Goodrich & Mitzenmacher (2011) and the
Difference Digest of Eppstein et al. (2011):

``count``
    Signed number of keys hashed into the cell (insertions minus deletions).
``key_sum``
    XOR of all keys hashed into the cell (keys are ``key_bits``-wide ints).
``check_sum``
    XOR of a salted checksum of each key; guards peeling against cells whose
    ``count`` is ±1 only by coincidence.

Cell storage and mutation live in a pluggable backend (see
:mod:`repro.iblt.backends`): ``IBLT(config)`` uses the pure-Python reference,
``IBLT(config, backend="numpy")`` the vectorized engine, and
``backend="auto"`` the fastest available one.  All backends are
bit-compatible, so two parties may mix backends freely — the wire bytes and
decode results are identical.

The contract required by every caller in this library: **within one party's
table each key is inserted at most once.**  The robust protocol meets it with
occurrence-indexed cell keys; the exact baselines insert set elements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, SerializationError
from repro.iblt.backends import Backend, resolve_backend
from repro.iblt.hashing import HashFamily
from repro.net.bits import BitReader, BitWriter
from repro.net.codec import read_cells, write_cells

#: Asymptotic peeling thresholds for q-regular random hypergraphs: a table
#: with m cells decodes w.h.p. while the number of stored keys stays below
#: ``threshold(q) * m``.  (Molloy 2004 / Goodrich-Mitzenmacher 2011.)
PEELING_THRESHOLDS = {
    3: 0.818,
    4: 0.772,
    5: 0.701,
    6: 0.637,
}

#: Default safety factor applied below the asymptotic threshold; finite
#: tables need headroom (the threshold is sharp only as m -> infinity).
DEFAULT_SAFETY = 0.85


def recommended_cells(expected_diff: int, q: int = 4, safety: float = DEFAULT_SAFETY) -> int:
    """Cells needed to decode ``expected_diff`` keys w.h.p.

    Rounds up to a multiple of ``q`` (partitioned hashing) and never returns
    fewer than ``8 * q`` cells so tiny tables stay decodable.
    """
    if expected_diff < 0:
        raise ConfigError(f"expected_diff must be non-negative, got {expected_diff}")
    if q not in PEELING_THRESHOLDS:
        raise ConfigError(
            f"q must be one of {sorted(PEELING_THRESHOLDS)}, got {q}"
        )
    if not 0 < safety <= 1:
        raise ConfigError(f"safety must be in (0, 1], got {safety}")
    load = PEELING_THRESHOLDS[q] * safety
    cells = max(8 * q, int(expected_diff / load) + 1)
    return ((cells + q - 1) // q) * q


@dataclass(frozen=True)
class IBLTConfig:
    """Shared (public-coin) parameters of an IBLT.

    Both parties must construct their tables from an identical config; the
    config itself is never transmitted.  (The backend hosting the cells is a
    private, per-party choice — it does not affect the wire format and is
    deliberately not part of this config.)
    """

    cells: int
    q: int = 4
    key_bits: int = 64
    checksum_bits: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.q < 2:
            raise ConfigError(f"q must be >= 2, got {self.q}")
        if self.cells <= 0 or self.cells % self.q != 0:
            raise ConfigError(
                f"cells must be a positive multiple of q={self.q}, got {self.cells}"
            )
        if self.key_bits <= 0:
            raise ConfigError(f"key_bits must be positive, got {self.key_bits}")
        if not 1 <= self.checksum_bits <= 64:
            raise ConfigError(
                f"checksum_bits must be in [1, 64], got {self.checksum_bits}"
            )

    @property
    def capacity(self) -> int:
        """Nominal number of difference keys this table is sized to decode."""
        threshold = PEELING_THRESHOLDS.get(self.q, PEELING_THRESHOLDS[4])
        return int(self.cells * threshold * DEFAULT_SAFETY)

    def hash_family(self) -> HashFamily:
        """The cell-index hash family implied by this config."""
        return HashFamily(self.q, self.cells, self.seed)


def _materialize(keys):
    """Give backends a re-iterable, len-aware batch (generators included)."""
    if isinstance(keys, (list, tuple)) or hasattr(keys, "dtype"):
        return keys
    return list(keys)


class IBLT:
    """A mutable IBLT instance.

    Parameters
    ----------
    config:
        Shared parameters (see :class:`IBLTConfig`).
    backend:
        Cell-storage engine name (see :mod:`repro.iblt.backends`); ``None``
        means the pure-Python reference, ``"auto"`` the fastest available
        backend supporting this config.

    Notes
    -----
    ``subtract`` produces the Alice-minus-Bob table whose peeling yields the
    two-sided symmetric difference: keys with net count ``+1`` belong only to
    the minuend (Alice), ``-1`` only to the subtrahend (Bob).
    """

    __slots__ = ("config", "_hashes", "_backend")

    def __init__(self, config: IBLTConfig, backend: str | None = None):
        self.config = config
        self._hashes = config.hash_family()
        if backend is None:
            backend = "pure"
        self._backend = resolve_backend(backend, config)(config)

    @classmethod
    def _wrap(cls, config: IBLTConfig, backend: Backend) -> "IBLT":
        """Adopt an existing backend instance (internal fast path)."""
        table = cls.__new__(cls)
        table.config = config
        table._hashes = config.hash_family()
        table._backend = backend
        return table

    @property
    def hashes(self) -> HashFamily:
        """The cell-index hash family used by this table."""
        return self._hashes

    @property
    def backend_name(self) -> str:
        """Registry name of the cell-storage backend hosting this table."""
        return self._backend.name

    @property
    def counts(self):
        """Per-cell signed key counts (backend-native array or list)."""
        return self._backend.counts

    @property
    def key_sums(self):
        """Per-cell key XOR accumulators (backend-native array or list)."""
        return self._backend.key_sums

    @property
    def check_sums(self):
        """Per-cell checksum XOR accumulators (backend-native array or list)."""
        return self._backend.check_sums

    # --------------------------------------------------------------- updates

    def insert(self, key: int) -> None:
        """Add one key to the table."""
        self._backend.apply(key, +1)

    def delete(self, key: int) -> None:
        """Remove one key from the table (counts may go negative)."""
        self._backend.apply(key, -1)

    def insert_many(self, keys) -> None:
        """Insert a whole batch of keys (vectorized where the backend can).

        Accepts any iterable of non-negative ints (numpy arrays included);
        equivalent to — but on batch backends much faster than — calling
        :meth:`insert` per key.
        """
        self._backend.apply_batch(_materialize(keys), +1)

    def delete_many(self, keys) -> None:
        """Delete a whole batch of keys (see :meth:`insert_many`)."""
        self._backend.apply_batch(_materialize(keys), -1)

    def insert_all(self, keys) -> None:
        """Insert every key of an iterable (alias of :meth:`insert_many`)."""
        self.insert_many(keys)

    def delete_all(self, keys) -> None:
        """Delete every key of an iterable (alias of :meth:`delete_many`)."""
        self.delete_many(keys)

    # --------------------------------------------------------------- algebra

    def subtract(self, other: "IBLT") -> "IBLT":
        """Return a new table equal to ``self - other`` cell-wise.

        Both tables must share an identical config (same public coins); the
        backends may differ — ``other`` is converted to this table's backend
        first, and the result keeps this table's backend.
        """
        if self.config != other.config:
            raise ConfigError("cannot subtract IBLTs with different configs")
        other_backend = other._backend
        if type(other_backend) is not type(self._backend):
            converted = type(self._backend)(other.config)
            converted.load_rows(*other_backend.rows_arrays())
            other_backend = converted
        return IBLT._wrap(self.config, self._backend.subtract(other_backend))

    def is_empty(self) -> bool:
        """True when every cell is zero (sets were identical)."""
        return self._backend.is_empty()

    def nonzero_cells(self) -> int:
        """Number of cells with any nonzero field (decode-failure diagnostic)."""
        return self._backend.nonzero_cells()

    def cell(self, index: int) -> tuple[int, int, int]:
        """``(count, key_sum, check_sum)`` of one cell, as Python ints."""
        return self._backend.cell(index)

    def cell_is_pure(self, index: int) -> int:
        """Return ``+1``/``-1`` if cell ``index`` holds exactly one key from
        the corresponding side (checksum-verified), else ``0``."""
        return self._backend.cell_is_pure(index)

    def pure_cells(self) -> list[int]:
        """Indices of all currently pure cells, ascending."""
        return self._backend.pure_cells()

    def pure_mask(self):
        """Parallel ``(indices, signs)`` of all pure cells, index-ascending.

        Backend-native sequences (numpy arrays on the vector backend); the
        batch decoder's per-round scan.
        """
        return self._backend.pure_mask()

    def gather_cells(self, indices):
        """The ``key_sum`` field of each listed cell (backend-native)."""
        return self._backend.gather_cells(indices)

    def scatter_update(self, keys, signs) -> None:
        """Bulk-remove peeled keys: ``apply(key, -sign)`` per pair."""
        self._backend.scatter_update(keys, signs)

    def merge_cells(self, indices, counts, key_sums, check_sums) -> None:
        """Accumulate arriving cell contents (count add, sum XOR) into the
        listed cells — the resumable decoder's late-cell intake.  Indices
        must be unique within one call."""
        self._backend.merge_cells(indices, counts, key_sums, check_sums)

    def copy(self) -> "IBLT":
        """Deep copy (used by the decoder, which peels destructively)."""
        return IBLT._wrap(self.config, self._backend.copy())

    def rows_arrays(self):
        """The three parallel cell columns, backend-native (read-only)."""
        return self._backend.rows_arrays()

    # ------------------------------------------------------------------ wire

    def write_to(self, writer: BitWriter) -> None:
        """Serialise cell contents (the config travels via public coins).

        Routed through the shared wire codec (:mod:`repro.net.codec`):
        whole-table columnar packing when numpy is available, the scalar
        field-at-a-time reference otherwise — same bytes either way.
        """
        counts, key_sums, check_sums = self._backend.rows_arrays()
        write_cells(
            writer, counts, key_sums, check_sums,
            self.config.key_bits, self.config.checksum_bits,
        )

    def to_bytes(self) -> bytes:
        """Serialise to a standalone byte string."""
        writer = BitWriter()
        self.write_to(writer)
        return writer.getvalue()

    @classmethod
    def read_from(
        cls, reader: BitReader, config: IBLTConfig, backend: str | None = None
    ) -> "IBLT":
        """Deserialise a table previously written with :meth:`write_to`.

        The shared wire codec parses all cells in bulk (columnar unpack on
        numpy, scalar reference otherwise) and hands the columns straight
        to the backend's ``load_rows``.
        """
        counts, key_sums, check_sums = read_cells(
            reader, config.cells, config.key_bits, config.checksum_bits
        )
        table = cls(config, backend=backend)
        table._backend.load_rows(counts, key_sums, check_sums)
        return table

    @classmethod
    def from_bytes(
        cls, data: bytes, config: IBLTConfig, backend: str | None = None
    ) -> "IBLT":
        """Deserialise from a standalone byte string."""
        reader = BitReader(data)
        table = cls.read_from(reader, config, backend=backend)
        try:
            reader.expect_end()
        except SerializationError as exc:
            raise SerializationError(f"IBLT payload has trailing data: {exc}") from exc
        return table

    def serialized_bits(self) -> int:
        """Measured wire size in bits (varint counts make this data-dependent)."""
        writer = BitWriter()
        self.write_to(writer)
        return writer.bit_length
