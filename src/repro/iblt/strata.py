"""Strata estimator for set-difference size (Eppstein et al., SIGCOMM 2011).

Exact-reconciliation protocols must size their IBLT to the (unknown)
difference ``|S_A △ S_B|``.  The strata estimator partitions the key space
into geometric strata — stratum ``i`` holds keys whose hashed value has
exactly ``i`` trailing zero bits, a ``2^-(i+1)`` fraction — and keeps a small
fixed-size IBLT per stratum.  Deep strata see few difference keys and decode;
scaling the decoded counts back up estimates the total.

The estimator is reused by the robust protocol's adaptive variant to pick the
finest decodable grid level before any full-size sketch is shipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, SerializationError
from repro.iblt.decode import decode
from repro.iblt.hashing import TabulationHash, trailing_zeros
from repro.iblt.table import IBLT, IBLTConfig
from repro.net.bits import BitReader, BitWriter


@dataclass(frozen=True)
class StrataConfig:
    """Shared (public-coin) parameters of a strata estimator."""

    strata: int = 16
    cells_per_stratum: int = 40
    q: int = 4
    key_bits: int = 64
    checksum_bits: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.strata < 2:
            raise ConfigError(f"need at least 2 strata, got {self.strata}")
        if self.cells_per_stratum < self.q:
            raise ConfigError(
                f"cells_per_stratum must be >= q, got {self.cells_per_stratum}"
            )

    def iblt_config(self, stratum: int) -> IBLTConfig:
        """Config of one stratum's table (each stratum gets its own salt)."""
        cells = ((self.cells_per_stratum + self.q - 1) // self.q) * self.q
        return IBLTConfig(
            cells=cells,
            q=self.q,
            key_bits=self.key_bits,
            checksum_bits=self.checksum_bits,
            seed=self.seed ^ (0x51A7A + stratum * 0x9E37),
        )


class StrataEstimator:
    """One party's strata sketch.

    Usage: each party builds an estimator over its keys with identical
    config, one ships ``to_bytes()``, the receiver calls
    :meth:`estimate_difference` against its own estimator.
    """

    def __init__(self, config: StrataConfig):
        self.config = config
        self._stratum_hash = TabulationHash(config.seed ^ 0x57A7A)
        self.tables = [
            IBLT(config.iblt_config(i)) for i in range(config.strata)
        ]

    def _stratum_of(self, key: int) -> int:
        return trailing_zeros(self._stratum_hash(key), self.config.strata - 1)

    def insert(self, key: int) -> None:
        """Add one key to its stratum's table."""
        self.tables[self._stratum_of(key)].insert(key)

    def insert_all(self, keys) -> None:
        """Add every key of an iterable."""
        for key in keys:
            self.insert(key)

    def estimate_difference(
        self, other: "StrataEstimator", *, strategy: str = "batch"
    ) -> int:
        """Estimate ``|self_keys △ other_keys|``.

        Scans from the deepest stratum towards stratum 0, accumulating the
        decoded difference of every stratum that peels; on the first stratum
        ``i`` that fails, returns ``2^(i+1) × accumulated``.  If every
        stratum decodes the exact total is returned.

        The estimate is intentionally conservative-ish; callers typically
        multiply by a small headroom factor before sizing an IBLT.
        ``strategy`` selects the peeling strategy per stratum (see
        :func:`repro.iblt.decode.decode`); protocols pass their config's
        ``decode_strategy`` through.
        """
        if self.config != other.config:
            raise ConfigError("strata estimators built with different configs")
        accumulated = 0
        for i in range(self.config.strata - 1, -1, -1):
            diff = self.tables[i].subtract(other.tables[i])
            result = decode(diff, strategy=strategy)
            if not result.success:
                if accumulated == 0:
                    # The deepest strata already overflowed: the difference
                    # is at least the failed table's capacity at this
                    # stratum's sampling rate.  Overestimating is the safe
                    # direction (callers only use the estimate to size
                    # sketches / pick coarser levels).
                    accumulated = max(1, self.tables[i].config.capacity)
                return max(1, (2 ** (i + 1)) * accumulated)
            accumulated += result.difference_size
        return accumulated

    # ------------------------------------------------------------------ wire

    def write_to(self, writer: BitWriter) -> None:
        """Serialise every stratum's table."""
        for table in self.tables:
            table.write_to(writer)

    def to_bytes(self) -> bytes:
        """Serialise to a standalone byte string."""
        writer = BitWriter()
        self.write_to(writer)
        return writer.getvalue()

    @classmethod
    def read_from(cls, reader: BitReader, config: StrataConfig) -> "StrataEstimator":
        """Deserialise an estimator written with :meth:`write_to`."""
        estimator = cls(config)
        estimator.tables = [
            IBLT.read_from(reader, config.iblt_config(i))
            for i in range(config.strata)
        ]
        return estimator

    @classmethod
    def from_bytes(cls, data: bytes, config: StrataConfig) -> "StrataEstimator":
        """Deserialise from a standalone byte string."""
        reader = BitReader(data)
        estimator = cls.read_from(reader, config)
        try:
            reader.expect_end()
        except SerializationError as exc:
            raise SerializationError(
                f"strata payload has trailing data: {exc}"
            ) from exc
        return estimator

    def serialized_bits(self) -> int:
        """Measured wire size in bits."""
        writer = BitWriter()
        self.write_to(writer)
        return writer.bit_length
