"""Strata estimator for set-difference size (Eppstein et al., SIGCOMM 2011).

Exact-reconciliation protocols must size their IBLT to the (unknown)
difference ``|S_A △ S_B|``.  The strata estimator partitions the key space
into geometric strata — stratum ``i`` holds keys whose hashed value has
exactly ``i`` trailing zero bits, a ``2^-(i+1)`` fraction — and keeps a small
fixed-size IBLT per stratum.  Deep strata see few difference keys and decode;
scaling the decoded counts back up estimates the total.

The estimator is reused by the robust protocol's adaptive variant to pick the
finest decodable grid level before any full-size sketch is shipped.
"""

from __future__ import annotations

from dataclasses import dataclass

try:  # soft dependency: bulk stratum assignment vectorizes, the rest never needs it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

from repro.errors import ConfigError, SerializationError
from repro.iblt.decode import decode
from repro.iblt.hashing import TabulationHash, trailing_zeros, trailing_zeros_many
from repro.iblt.table import IBLT, IBLTConfig
from repro.net.bits import BitReader, BitWriter


@dataclass(frozen=True)
class StrataConfig:
    """Shared (public-coin) parameters of a strata estimator."""

    strata: int = 16
    cells_per_stratum: int = 40
    q: int = 4
    key_bits: int = 64
    checksum_bits: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.strata < 2:
            raise ConfigError(f"need at least 2 strata, got {self.strata}")
        if self.cells_per_stratum < self.q:
            raise ConfigError(
                f"cells_per_stratum must be >= q, got {self.cells_per_stratum}"
            )

    def iblt_config(self, stratum: int) -> IBLTConfig:
        """Config of one stratum's table (each stratum gets its own salt)."""
        cells = ((self.cells_per_stratum + self.q - 1) // self.q) * self.q
        return IBLTConfig(
            cells=cells,
            q=self.q,
            key_bits=self.key_bits,
            checksum_bits=self.checksum_bits,
            seed=self.seed ^ (0x51A7A + stratum * 0x9E37),
        )


class StrataEstimator:
    """One party's strata sketch.

    Usage: each party builds an estimator over its keys with identical
    config, one ships ``to_bytes()``, the receiver calls
    :meth:`estimate_difference` against its own estimator.

    ``backend`` selects the cell-storage engine hosting the stratum
    tables (see :mod:`repro.iblt.backends`); like the IBLT's backend it
    is a private, per-party choice — all backends are bit-compatible, so
    the wire bytes and estimates are identical.
    """

    def __init__(self, config: StrataConfig, backend: str | None = None):
        self.config = config
        self._stratum_hash = TabulationHash(config.seed ^ 0x57A7A)
        self.tables = [
            IBLT(config.iblt_config(i), backend=backend)
            for i in range(config.strata)
        ]

    @classmethod
    def _shell(cls, config: StrataConfig) -> "StrataEstimator":
        """An estimator without its tables yet (deserialisation fast path:
        building ``strata`` fresh tables just to replace them is wasted
        allocation on the serve layer's per-connection hot path)."""
        estimator = cls.__new__(cls)
        estimator.config = config
        estimator._stratum_hash = TabulationHash(config.seed ^ 0x57A7A)
        return estimator

    def _stratum_of(self, key: int) -> int:
        return trailing_zeros(self._stratum_hash(key), self.config.strata - 1)

    def insert(self, key: int) -> None:
        """Add one key to its stratum's table."""
        self.tables[self._stratum_of(key)].insert(key)

    def insert_all(self, keys) -> None:
        """Add every key of an iterable.

        With numpy available the stratum assignment runs in bulk — one
        vectorized tabulation hash plus a trailing-zeros pass over the
        whole batch — and each stratum's table ingests its keys through
        the batch insert path.  The resulting tables are identical to the
        scalar reference path (:meth:`_insert_all_scalar`): assignment is
        the same per key, and cell updates commute.
        """
        if _np is None:
            self._insert_all_scalar(keys)
            return
        if not isinstance(keys, (list, tuple)) and not hasattr(keys, "dtype"):
            keys = list(keys)
        if len(keys) == 0:
            return
        try:
            if hasattr(keys, "dtype"):
                # Signed arrays with negatives (and non-integer dtypes)
                # would cast into uint64 silently; the scalar path rejects
                # them per key instead.
                if keys.dtype.kind not in "ui":
                    # repro-lint: waive[RPL003] reason=control flow; caught by the except arm below to route into the scalar path
                    raise TypeError
                if keys.dtype.kind == "i" and keys.size and keys.min() < 0:
                    # repro-lint: waive[RPL003] reason=control flow; caught by the except arm below to route into the scalar path
                    raise OverflowError
            elif min(keys) < 0:
                # NumPy 1.x silently wraps negative Python ints into uint64;
                # route negatives through the scalar path's per-key rejection.
                # repro-lint: waive[RPL003] reason=control flow; caught by the except arm below to route into the scalar path
                raise OverflowError
            arr = _np.asarray(keys, dtype=_np.uint64)
        except (OverflowError, TypeError, ValueError):
            # Keys wider than 64 bits (or exotic objects): the scalar path
            # folds / validates them per key.
            self._insert_all_scalar(keys)
            return
        strata = trailing_zeros_many(
            self._stratum_hash.hash_many(arr), self.config.strata - 1
        )
        for index in range(self.config.strata):
            selected = arr[strata == index]
            if selected.size:
                self.tables[index].insert_many(selected)

    def _insert_all_scalar(self, keys) -> None:
        """The per-key reference path (also the no-numpy fallback)."""
        if hasattr(keys, "tolist"):
            # Iterating an ndarray yields numpy scalars, which the per-key
            # validation rejects for the wrong reason (no ``bit_length``).
            keys = keys.tolist()
        for key in keys:
            self.insert(key)

    def estimate_difference(
        self, other: "StrataEstimator", *, strategy: str = "batch"
    ) -> int:
        """Estimate ``|self_keys △ other_keys|``.

        Scans from the deepest stratum towards stratum 0, accumulating the
        decoded difference of every stratum that peels; on the first stratum
        ``i`` that fails, returns ``2^(i+1) × accumulated``.  If every
        stratum decodes the exact total is returned.

        The estimate is intentionally conservative-ish; callers typically
        multiply by a small headroom factor before sizing an IBLT.
        ``strategy`` selects the peeling strategy per stratum (see
        :func:`repro.iblt.decode.decode`); protocols pass their config's
        ``decode_strategy`` through.
        """
        if self.config != other.config:
            raise ConfigError("strata estimators built with different configs")
        accumulated = 0
        for i in range(self.config.strata - 1, -1, -1):
            diff = self.tables[i].subtract(other.tables[i])
            result = decode(diff, strategy=strategy)
            if not result.success:
                if accumulated == 0:
                    # The deepest strata already overflowed: the difference
                    # is at least the failed table's capacity at this
                    # stratum's sampling rate.  Overestimating is the safe
                    # direction (callers only use the estimate to size
                    # sketches / pick coarser levels).
                    accumulated = max(1, self.tables[i].config.capacity)
                return max(1, (2 ** (i + 1)) * accumulated)
            accumulated += result.difference_size
        return accumulated

    # ------------------------------------------------------------------ wire

    def write_to(self, writer: BitWriter) -> None:
        """Serialise every stratum's table."""
        for table in self.tables:
            table.write_to(writer)

    def to_bytes(self) -> bytes:
        """Serialise to a standalone byte string."""
        writer = BitWriter()
        self.write_to(writer)
        return writer.getvalue()

    @classmethod
    def read_from(
        cls,
        reader: BitReader,
        config: StrataConfig,
        backend: str | None = None,
    ) -> "StrataEstimator":
        """Deserialise an estimator written with :meth:`write_to`."""
        estimator = cls._shell(config)
        estimator.tables = [
            IBLT.read_from(reader, config.iblt_config(i), backend=backend)
            for i in range(config.strata)
        ]
        return estimator

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        config: StrataConfig,
        backend: str | None = None,
    ) -> "StrataEstimator":
        """Deserialise from a standalone byte string."""
        reader = BitReader(data)
        estimator = cls.read_from(reader, config, backend=backend)
        try:
            reader.expect_end()
        except SerializationError as exc:
            raise SerializationError(
                f"strata payload has trailing data: {exc}"
            ) from exc
        return estimator

    def serialized_bits(self) -> int:
        """Measured wire size in bits."""
        writer = BitWriter()
        self.write_to(writer)
        return writer.bit_length
