"""Peeling decoder for (subtracted) IBLTs.

Peeling repeatedly finds a *pure* cell — one whose count is ±1 and whose
checksum field matches the checksum of its key field — extracts the key, and
removes it from its other cells, which may expose new pure cells.  On a
subtracted table (Alice − Bob) the sign of the pure cell tells which side
owned the key.

The process is exactly the 2-core peeling of a random ``q``-uniform
hypergraph: it recovers everything iff the hypergraph of remaining keys has
an empty 2-core, which holds w.h.p. while the number of difference keys is
below ``PEELING_THRESHOLDS[q] * cells``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.iblt.table import IBLT


@dataclass
class DecodeResult:
    """Outcome of peeling one subtracted IBLT.

    Attributes
    ----------
    success:
        True when the table peeled to empty.
    alice_keys:
        Keys recovered with positive sign (present only in the minuend).
    bob_keys:
        Keys recovered with negative sign (present only in the subtrahend).
    remaining_cells:
        Non-empty cells left when peeling stalled (0 on success).
    peel_order:
        Keys in the order they were extracted (diagnostics / ablations).
    """

    success: bool
    alice_keys: list[int] = field(default_factory=list)
    bob_keys: list[int] = field(default_factory=list)
    remaining_cells: int = 0
    peel_order: list[tuple[int, int]] = field(default_factory=list)

    @property
    def difference_size(self) -> int:
        """Total number of keys recovered from both sides."""
        return len(self.alice_keys) + len(self.bob_keys)


def decode(table: IBLT, *, max_items: int | None = None) -> DecodeResult:
    """Peel ``table`` (non-destructively) and return the recovered difference.

    Parameters
    ----------
    table:
        A subtracted IBLT.  (Peeling a single party's table also works and
        lists its contents.)
    max_items:
        Guard: abort with ``success=False`` if more than this many keys get
        extracted.  Protocols use it to reject levels that decode to an
        implausibly large difference.  Defaults to ``2 × cells``: a
        legitimate full peel can never extract more than the peeling
        threshold (~0.82 × cells) keys, while a *false* peel — a weak
        checksum admitting a garbage key — can otherwise churn the table
        forever (every bogus extraction re-perturbs cells and can expose
        further bogus "pure" cells).  The cap turns that pathology into a
        clean failure.

    Notes
    -----
    The copy-then-peel costs O(cells + difference); tables in this library
    are O(k)-sized so this is cheap compared to hashing the input sets.
    """
    if max_items is None:
        max_items = 2 * table.config.cells
    work = table.copy()
    result = DecodeResult(success=False)

    # Batch scan (vectorized on array backends); ascending order fixes the
    # peel order identically across backends.
    stack = work.pure_cells()
    seen_pure = set(stack)

    while stack:
        index = stack.pop()
        seen_pure.discard(index)
        sign = work.cell_is_pure(index)
        if sign == 0:
            continue  # became impure/empty since queued
        key = work.cell(index)[1]
        if sign > 0:
            result.alice_keys.append(key)
            work.delete(key)
        else:
            result.bob_keys.append(key)
            work.insert(key)
        result.peel_order.append((key, sign))
        if result.difference_size > max_items:
            result.success = False
            result.remaining_cells = work.nonzero_cells()
            return result
        for neighbour in work.hashes.indices(key):
            if work.cell_is_pure(neighbour) and neighbour not in seen_pure:
                stack.append(neighbour)
                seen_pure.add(neighbour)

    result.success = work.is_empty()
    result.remaining_cells = work.nonzero_cells()
    return result
