"""Peeling decoder for (subtracted) IBLTs.

Peeling repeatedly finds a *pure* cell — one whose count is ±1 and whose
checksum field matches the checksum of its key field — extracts the key, and
removes it from its other cells, which may expose new pure cells.  On a
subtracted table (Alice − Bob) the sign of the pure cell tells which side
owned the key.

The process is exactly the 2-core peeling of a random ``q``-uniform
hypergraph: it recovers everything iff the hypergraph of remaining keys has
an empty 2-core, which holds w.h.p. while the number of difference keys is
below ``PEELING_THRESHOLDS[q] * cells``.

Two strategies implement the same peeling:

``"batch"`` (default)
    Round-based: each round finds *all* currently pure cells with one
    vectorized scan (:meth:`~repro.iblt.table.IBLT.pure_mask`), gathers
    their keys, and scatter-applies every removal in one bulk pass
    (:meth:`~repro.iblt.table.IBLT.scatter_update`), repeating until no
    pure cell remains.  On array backends a whole round costs a handful of
    numpy kernels instead of a Python round-trip per key.

``"scalar"``
    The classic one-key-at-a-time stack peel, kept for diagnostics and as
    the differential-testing oracle.

Because peeling is confluent — every genuinely pure cell holds exactly one
net key, so removing one key never invalidates another simultaneously-pure
cell — both strategies recover identical key *sets* (same ``success``,
``alice_keys`` / ``bob_keys`` as multisets, same ``remaining_cells``) on
every input that does not trip the ``max_items`` guard; the differential
suite (``tests/test_decode_batch.py``) enforces this across backends.  Only
``peel_order`` differs: the batch decoder's order is **round-major,
index-ascending** (all round-1 extractions in cell-index order, then round
2, …), while the scalar decoder's is stack-driven.  On a guard abort both
report ``success=False``, but the partial key lists are strategy-specific.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.iblt.table import IBLT

try:  # soft dependency: only the batch-round dedup has a numpy fast path
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: Peeling strategies accepted by :func:`decode`.
DECODE_STRATEGIES = ("batch", "scalar")


@dataclass
class DecodeResult:
    """Outcome of peeling one subtracted IBLT.

    Attributes
    ----------
    success:
        True when the table peeled to empty.
    alice_keys:
        Keys recovered with positive sign (present only in the minuend).
    bob_keys:
        Keys recovered with negative sign (present only in the subtrahend).
    remaining_cells:
        Non-empty cells left when peeling stalled (0 on success).
    peel_order:
        Keys in the order they were extracted (diagnostics / ablations).
        Round-major and index-ascending under the batch strategy,
        stack-driven under the scalar one.
    """

    success: bool
    alice_keys: list[int] = field(default_factory=list)
    bob_keys: list[int] = field(default_factory=list)
    remaining_cells: int = 0
    peel_order: list[tuple[int, int]] = field(default_factory=list)

    @property
    def difference_size(self) -> int:
        """Total number of keys recovered from both sides."""
        return len(self.alice_keys) + len(self.bob_keys)


def decode(
    table: IBLT, *, max_items: int | None = None, strategy: str = "batch"
) -> DecodeResult:
    """Peel ``table`` (non-destructively) and return the recovered difference.

    Parameters
    ----------
    table:
        A subtracted IBLT.  (Peeling a single party's table also works and
        lists its contents.)
    max_items:
        Guard: abort with ``success=False`` if more than this many keys get
        extracted.  Protocols use it to reject levels that decode to an
        implausibly large difference.  Defaults to ``2 × cells``: a
        legitimate full peel can never extract more than the peeling
        threshold (~0.82 × cells) keys, while a *false* peel — a weak
        checksum admitting a garbage key — can otherwise churn the table
        forever (every bogus extraction re-perturbs cells and can expose
        further bogus "pure" cells).  The cap turns that pathology into a
        clean failure.  The scalar strategy checks it per extraction, the
        batch strategy per round.
    strategy:
        ``"batch"`` (default) or ``"scalar"`` — see the module docstring.
        Both recover the same key sets; only ``peel_order`` differs.

    Notes
    -----
    The copy-then-peel costs O(cells + difference); tables in this library
    are O(k)-sized so this is cheap compared to hashing the input sets.
    """
    if strategy not in DECODE_STRATEGIES:
        raise ConfigError(
            f"decode strategy must be one of {DECODE_STRATEGIES}, got {strategy!r}"
        )
    if max_items is None:
        max_items = 2 * table.config.cells
    work = table.copy()
    if strategy == "scalar":
        return _peel_scalar(work, max_items)
    return _peel_batch(work, max_items)


# ------------------------------------------------------------- batch rounds


def _dedup_first_key(keys, signs):
    """Drop repeated keys within one round, keeping the first occurrence.

    A key alone in two of its ``q`` cells shows up behind *both* pure
    cells; extracting it twice in one round would corrupt the table (the
    scalar peel naturally skips the second cell, which turns impure after
    the first extraction).  Order is preserved, so the round stays
    index-ascending.
    """
    if _np is not None and isinstance(keys, _np.ndarray):
        unique, first = _np.unique(keys, return_index=True)
        if unique.size == keys.size:
            return keys, signs
        order = _np.sort(first)
        return keys[order], signs[order]
    seen: set[int] = set()
    out_keys: list[int] = []
    out_signs: list[int] = []
    for key, sign in zip(keys, signs):
        if key not in seen:
            seen.add(key)
            out_keys.append(key)
            out_signs.append(sign)
    return out_keys, out_signs


def _peel_batch(work: IBLT, max_items: int) -> DecodeResult:
    """Round-based peel: find every pure cell, extract all keys, repeat."""
    result = DecodeResult(success=False)
    while True:
        indices, signs = work.pure_mask()
        if len(indices) == 0:
            break
        keys = work.gather_cells(indices)
        keys, signs = _dedup_first_key(keys, signs)
        # Backend-native arrays feed the scatter; the result lists hold
        # Python ints (what every protocol layer downstream expects).
        key_list = keys.tolist() if hasattr(keys, "tolist") else keys
        sign_list = signs.tolist() if hasattr(signs, "tolist") else signs
        for key, sign in zip(key_list, sign_list):
            if sign > 0:
                result.alice_keys.append(key)
            else:
                result.bob_keys.append(key)
            result.peel_order.append((key, sign))
        work.scatter_update(keys, signs)
        if result.difference_size > max_items:
            result.remaining_cells = work.nonzero_cells()
            return result
    result.success = work.is_empty()
    result.remaining_cells = work.nonzero_cells()
    return result


# ------------------------------------------------------------- scalar stack


def _peel_scalar(work: IBLT, max_items: int) -> DecodeResult:
    """The reference one-key-at-a-time peel (stack-driven order)."""
    result = DecodeResult(success=False)

    # Batch scan (vectorized on array backends); ascending order fixes the
    # peel order identically across backends.
    stack = work.pure_cells()
    seen_pure = set(stack)

    while stack:
        index = stack.pop()
        seen_pure.discard(index)
        sign = work.cell_is_pure(index)
        if sign == 0:
            continue  # became impure/empty since queued
        key = work.cell(index)[1]
        if sign > 0:
            result.alice_keys.append(key)
            work.delete(key)
        else:
            result.bob_keys.append(key)
            work.insert(key)
        result.peel_order.append((key, sign))
        if result.difference_size > max_items:
            result.success = False
            result.remaining_cells = work.nonzero_cells()
            return result
        for neighbour in work.hashes.indices(key):
            if work.cell_is_pure(neighbour) and neighbour not in seen_pure:
                stack.append(neighbour)
                seen_pure.add(neighbour)

    result.success = work.is_empty()
    result.remaining_cells = work.nonzero_cells()
    return result
