"""Peeling decoder for (subtracted) IBLTs.

Peeling repeatedly finds a *pure* cell — one whose count is ±1 and whose
checksum field matches the checksum of its key field — extracts the key, and
removes it from its other cells, which may expose new pure cells.  On a
subtracted table (Alice − Bob) the sign of the pure cell tells which side
owned the key.

The process is exactly the 2-core peeling of a random ``q``-uniform
hypergraph: it recovers everything iff the hypergraph of remaining keys has
an empty 2-core, which holds w.h.p. while the number of difference keys is
below ``PEELING_THRESHOLDS[q] * cells``.

Two strategies implement the same peeling:

``"batch"`` (default)
    Round-based: each round finds *all* currently pure cells with one
    vectorized scan (:meth:`~repro.iblt.table.IBLT.pure_mask`), gathers
    their keys, and scatter-applies every removal in one bulk pass
    (:meth:`~repro.iblt.table.IBLT.scatter_update`), repeating until no
    pure cell remains.  On array backends a whole round costs a handful of
    numpy kernels instead of a Python round-trip per key.

``"scalar"``
    The classic one-key-at-a-time stack peel, kept for diagnostics and as
    the differential-testing oracle.

Because peeling is confluent — every genuinely pure cell holds exactly one
net key, so removing one key never invalidates another simultaneously-pure
cell — both strategies recover identical key *sets* (same ``success``,
``alice_keys`` / ``bob_keys`` as multisets, same ``remaining_cells``) on
every input that does not trip the ``max_items`` guard; the differential
suite (``tests/test_decode_batch.py``) enforces this across backends.  Only
``peel_order`` differs: the batch decoder's order is **round-major,
index-ascending** (all round-1 extractions in cell-index order, then round
2, …), while the scalar decoder's is stack-driven.  On a guard abort both
report ``success=False`` after at most ``max_items`` applied extractions
(the cap is enforced *within* a round, not merely between rounds), but the
partial key lists are strategy-specific.

Resumable peeling
-----------------

:class:`PeelState` makes the peel loop a first-class, *resumable* object:
cells may arrive over time — whole extra tables via :meth:`PeelState.extend`
(the rateless protocol streams IBLT segments this way) or individual cells
via :meth:`PeelState.feed_cells` — and each arrival continues peeling from
where the previous one stalled instead of re-decoding from scratch.  The
state spans a *sequence of segments* forming one concatenated cell space;
the contract is that **every difference key occupies its ``q`` cells in
every segment** (segments are same-keyspace sketches under independent
seeds), so a key recovered from any one segment can be removed from all of
them.  ``decode()`` is now a thin wrapper: one fully-known segment, peeled
to exhaustion — bit-identical to the historical monolithic implementation.

Cells that have been *declared* but not yet *fed* start zeroed; peel
corrections for already-recovered keys accumulate in them, and
:meth:`~repro.iblt.table.IBLT.merge_cells` later adds the true cell content
on top (count adds, sums XOR commute), so a resumed peel sees exactly the
cells a fresh decode of the full table would.  Unknown cells can *look*
pure while holding only a correction, so every purity scan filters through
the per-segment known mask; fully-known segments skip the filter and run
the historical fast path.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ConfigError
from repro.iblt.table import IBLT, IBLTConfig

try:  # soft dependency: only the batch-round dedup has a numpy fast path
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: Peeling strategies accepted by :func:`decode` and :class:`PeelState`.
DECODE_STRATEGIES = ("batch", "scalar")


@dataclass
class DecodeResult:
    """Outcome of peeling one subtracted IBLT.

    Attributes
    ----------
    success:
        True when the table peeled to empty.
    alice_keys:
        Keys recovered with positive sign (present only in the minuend).
    bob_keys:
        Keys recovered with negative sign (present only in the subtrahend).
    remaining_cells:
        Non-empty cells left when peeling stalled (0 on success).
    peel_order:
        Keys in the order they were extracted (diagnostics / ablations).
        Round-major and index-ascending under the batch strategy,
        stack-driven under the scalar one.
    """

    success: bool
    alice_keys: list[int] = field(default_factory=list)
    bob_keys: list[int] = field(default_factory=list)
    remaining_cells: int = 0
    peel_order: list[tuple[int, int]] = field(default_factory=list)

    @property
    def difference_size(self) -> int:
        """Total number of keys recovered from both sides."""
        return len(self.alice_keys) + len(self.bob_keys)


def decode(
    table: IBLT, *, max_items: int | None = None, strategy: str = "batch"
) -> DecodeResult:
    """Peel ``table`` (non-destructively) and return the recovered difference.

    Parameters
    ----------
    table:
        A subtracted IBLT.  (Peeling a single party's table also works and
        lists its contents.)
    max_items:
        Guard: abort with ``success=False`` once peeling would extract more
        than this many keys.  Protocols use it to reject levels that decode
        to an implausibly large difference.  Defaults to ``2 × cells``: a
        legitimate full peel can never extract more than the peeling
        threshold (~0.82 × cells) keys, while a *false* peel — a weak
        checksum admitting a garbage key — can otherwise churn the table
        forever (every bogus extraction re-perturbs cells and can expose
        further bogus "pure" cells).  The cap turns that pathology into a
        clean failure, and it is enforced per *extraction*: no run ever
        applies more than ``max_items`` extractions, even mid-round under
        the batch strategy.
    strategy:
        ``"batch"`` (default) or ``"scalar"`` — see the module docstring.
        Both recover the same key sets; only ``peel_order`` differs.

    Notes
    -----
    The copy-then-peel costs O(cells + difference); tables in this library
    are O(k)-sized so this is cheap compared to hashing the input sets.
    """
    if max_items is None:
        max_items = 2 * table.config.cells
    state = PeelState(strategy=strategy, max_items=max_items)
    state.extend(table)
    return state.result()


class PeelState:
    """Resumable peeling over a growing sequence of IBLT segments.

    The state owns working copies of every segment handed to it, the keys
    recovered so far (with signs and extraction order), and the guard
    counters.  New cells join in two ways:

    :meth:`extend`
        Append a whole table as a fully-known segment and resume peeling.
        The rateless sessions use this: each wire increment is one segment.

    :meth:`declare` + :meth:`feed_cells`
        Announce a segment's shape up front (all cells unknown), then merge
        cell contents as they arrive — in any order, any grouping — peeling
        after each batch.  Cell indices are *global* across the
        concatenated declared space.

    All segments must share key and checksum widths, and every difference
    key must occupy its ``q`` cells in **every** segment (independent seeds
    over one keyspace); recovered keys are removed from all segments, and
    corrections for late segments are replayed at registration time.

    ``max_items=None`` means a dynamic guard of ``2 × total declared
    cells``, re-evaluated as segments arrive.  Once the guard trips the
    state is poisoned (``failed``) — further cells merge but never peel.

    With a single :meth:`extend`-ed segment the peel — including
    ``peel_order`` — is bit-identical to the historical ``decode()``;
    resumed runs recover identical key multisets but may order extractions
    differently (the differential suite in ``tests/test_peel_state.py``
    pins this).
    """

    def __init__(
        self,
        config: IBLTConfig | None = None,
        *,
        strategy: str = "batch",
        max_items: int | None = None,
        backend: str | None = None,
    ):
        if strategy not in DECODE_STRATEGIES:
            raise ConfigError(
                f"decode strategy must be one of {DECODE_STRATEGIES}, got {strategy!r}"
            )
        self._strategy = strategy
        self._max_items = max_items
        self._backend = backend
        self._segments: list[IBLT] = []
        #: Per segment: list of per-cell known flags, or ``None`` once every
        #: cell is known (the fast path never allocates the mask).
        self._known: list[list[bool] | None] = []
        self._unknown: list[int] = []
        self._starts: list[int] = []
        self._total_cells = 0
        self._alice: list[int] = []
        self._bob: list[int] = []
        self._order: list[tuple[int, int]] = []
        self._failed = False
        if config is not None:
            self.declare(config)

    # ------------------------------------------------------------ properties

    @property
    def strategy(self) -> str:
        return self._strategy

    @property
    def total_cells(self) -> int:
        """Cells across all declared/extended segments."""
        return self._total_cells

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def failed(self) -> bool:
        """True once the ``max_items`` guard tripped (state is poisoned)."""
        return self._failed

    @property
    def fully_known(self) -> bool:
        """True when every declared cell has been fed."""
        return all(unknown == 0 for unknown in self._unknown)

    @property
    def solved(self) -> bool:
        """True when peeling has provably recovered the whole difference:
        every segment is fully known and peeled to empty."""
        return (
            not self._failed
            and bool(self._segments)
            and self.fully_known
            and all(segment.is_empty() for segment in self._segments)
        )

    @property
    def difference_size(self) -> int:
        """Keys recovered so far, both sides combined."""
        return len(self._order)

    # ------------------------------------------------------------- growing

    def declare(self, config: IBLTConfig) -> int:
        """Register a segment whose cell contents will arrive later via
        :meth:`feed_cells`; returns the segment's index."""
        work = IBLT(config, backend=self._backend)
        self._apply_corrections(work)
        return self._register(work, known=False)

    def extend(self, table: IBLT) -> int:
        """Append ``table`` as a fully-known segment and resume peeling.

        The table is copied (peeling is destructive), corrections for keys
        already recovered from earlier segments are replayed into the copy,
        and the peel continues until it stalls again.  Returns the new
        segment's index.
        """
        work = table.copy()
        self._apply_corrections(work)
        index = self._register(work, known=True)
        self._peel()
        return index

    def feed_cells(
        self,
        indices: Sequence[int],
        cells: Iterable[tuple[int, int, int]],
    ) -> None:
        """Merge newly arrived cell contents and resume peeling.

        ``indices`` are *global* positions in the concatenated declared
        space; ``cells`` holds the matching ``(count, key_sum, check_sum)``
        triples.  Each cell may be fed exactly once (arriving content is
        *added* onto any peel corrections already accumulated in the zeroed
        placeholder, so a duplicate would corrupt the cell).
        """
        triples = [tuple(cell) for cell in cells]
        index_list = [int(index) for index in indices]
        if len(index_list) != len(triples):
            raise ConfigError(
                "feed_cells needs one (count, key_sum, check_sum) triple "
                f"per index, got {len(index_list)} indices for "
                f"{len(triples)} cells"
            )
        per_segment: dict[int, tuple[list, list, list, list]] = {}
        seen: set[int] = set()
        for global_index, (count, key_sum, check_sum) in zip(index_list, triples):
            if not 0 <= global_index < self._total_cells:
                raise ConfigError(
                    f"cell index {global_index} outside the declared space "
                    f"of {self._total_cells} cells"
                )
            if global_index in seen:
                raise ConfigError(
                    f"duplicate cell index {global_index} in one feed"
                )
            seen.add(global_index)
            segment = bisect_right(self._starts, global_index) - 1
            local = global_index - self._starts[segment]
            known = self._known[segment]
            if known is None or known[local]:
                raise ConfigError(
                    f"cell index {global_index} was already fed"
                )
            bucket = per_segment.setdefault(segment, ([], [], [], []))
            bucket[0].append(local)
            bucket[1].append(int(count))
            bucket[2].append(int(key_sum))
            bucket[3].append(int(check_sum))
        for segment, (locals_, counts, key_sums, check_sums) in per_segment.items():
            self._segments[segment].merge_cells(
                locals_, counts, key_sums, check_sums
            )
            known = self._known[segment]
            for local in locals_:
                known[local] = True
            self._unknown[segment] -= len(locals_)
            if self._unknown[segment] == 0:
                self._known[segment] = None
        self._peel()

    # ------------------------------------------------------------- results

    def result(self) -> DecodeResult:
        """Snapshot the peel outcome as a :class:`DecodeResult`.

        ``success`` mirrors :attr:`solved`; ``remaining_cells`` counts
        non-empty cells across all segments (on a partially-fed state this
        includes unknown cells holding only corrections — a diagnostic, not
        a decode verdict).  May be called repeatedly; the state stays
        usable for further feeding.
        """
        return DecodeResult(
            success=self.solved,
            alice_keys=list(self._alice),
            bob_keys=list(self._bob),
            remaining_cells=sum(
                segment.nonzero_cells() for segment in self._segments
            ),
            peel_order=list(self._order),
        )

    # ------------------------------------------------------------ internals

    def _limit(self) -> int:
        if self._max_items is not None:
            return self._max_items
        return 2 * self._total_cells

    def _register(self, work: IBLT, known: bool) -> int:
        config = work.config
        if self._segments:
            first = self._segments[0].config
            if (
                config.key_bits != first.key_bits
                or config.checksum_bits != first.checksum_bits
            ):
                raise ConfigError(
                    "peel segments must share key and checksum widths, got "
                    f"{config.key_bits}/{config.checksum_bits} bits after "
                    f"{first.key_bits}/{first.checksum_bits}"
                )
        self._segments.append(work)
        self._known.append(None if known else [False] * config.cells)
        self._unknown.append(0 if known else config.cells)
        self._starts.append(self._total_cells)
        self._total_cells += config.cells
        return len(self._segments) - 1

    def _apply_corrections(self, work: IBLT) -> None:
        """Remove already-recovered keys from a newly registered segment
        (every difference key occupies cells in every segment)."""
        if not self._order:
            return
        keys = [key for key, _ in self._order]
        signs = [sign for _, sign in self._order]
        work.scatter_update(keys, signs)

    def _record(self, keys, signs) -> None:
        # Backend-native arrays feed the scatter; the result lists hold
        # Python ints (what every protocol layer downstream expects).
        key_list = keys.tolist() if hasattr(keys, "tolist") else keys
        sign_list = signs.tolist() if hasattr(signs, "tolist") else signs
        for key, sign in zip(key_list, sign_list):
            if sign > 0:
                self._alice.append(key)
            else:
                self._bob.append(key)
            self._order.append((key, sign))

    def _peel(self) -> None:
        if self._failed:
            return
        if self._strategy == "scalar":
            self._peel_scalar()
        else:
            self._peel_batch()

    # ------------------------------------------------------- batch rounds

    def _pure_round(self):
        """One round's worth of verified pure cells across all segments,
        (segment, index)-ascending, unknown cells filtered out."""
        gathered = []
        for segment, known, unknown in zip(
            self._segments, self._known, self._unknown
        ):
            indices, signs = segment.pure_mask()
            if unknown:
                indices, signs = _filter_known(indices, signs, known)
            if len(indices) == 0:
                continue
            gathered.append((segment.gather_cells(indices), signs))
        if not gathered:
            return [], []
        if len(gathered) == 1:
            # Single-segment rounds keep the backend-native arrays — the
            # plain-decode fast path stays bit- and kernel-identical.
            return gathered[0]
        keys: list[int] = []
        signs_out: list[int] = []
        for segment_keys, segment_signs in gathered:
            keys.extend(
                segment_keys.tolist()
                if hasattr(segment_keys, "tolist")
                else segment_keys
            )
            signs_out.extend(
                segment_signs.tolist()
                if hasattr(segment_signs, "tolist")
                else segment_signs
            )
        return keys, signs_out

    def _peel_batch(self) -> None:
        """Round-based peel: find every pure cell, extract all keys, repeat."""
        while True:
            keys, signs = self._pure_round()
            if len(keys) == 0:
                return
            keys, signs = _dedup_first_key(keys, signs)
            allowed = self._limit() - len(self._order)
            if len(keys) > allowed:
                # Guard tripped mid-round: apply only the first ``allowed``
                # extractions so no run ever exceeds ``max_items``, then
                # poison the state.
                keys = keys[:allowed]
                signs = signs[:allowed]
                self._failed = True
            self._record(keys, signs)
            if len(keys):
                for segment in self._segments:
                    segment.scatter_update(keys, signs)
            if self._failed:
                return

    # ------------------------------------------------------- scalar stack

    def _peel_scalar(self) -> None:
        """The reference one-key-at-a-time peel (stack-driven order)."""
        # Batch scan (vectorized on array backends); ascending order fixes
        # the peel order identically across backends.
        stack: list[tuple[int, int]] = []
        for seg, segment in enumerate(self._segments):
            pure = segment.pure_cells()
            known = self._known[seg]
            if self._unknown[seg]:
                pure = [index for index in pure if known[index]]
            stack.extend((seg, index) for index in pure)
        seen_pure = set(stack)

        while stack:
            entry = stack.pop()
            seen_pure.discard(entry)
            seg, index = entry
            segment = self._segments[seg]
            sign = segment.cell_is_pure(index)
            if sign == 0:
                continue  # became impure/empty since queued
            if len(self._order) >= self._limit():
                # The next extraction would exceed the guard — abort
                # without applying it.
                self._failed = True
                return
            key = segment.cell(index)[1]
            if sign > 0:
                self._alice.append(key)
            else:
                self._bob.append(key)
            self._order.append((key, sign))
            for other_seg, other in enumerate(self._segments):
                if sign > 0:
                    other.delete(key)
                else:
                    other.insert(key)
                other_known = self._known[other_seg]
                other_unknown = self._unknown[other_seg]
                for neighbour in other.hashes.indices(key):
                    if other_unknown and not other_known[neighbour]:
                        continue
                    candidate = (other_seg, neighbour)
                    if other.cell_is_pure(neighbour) and candidate not in seen_pure:
                        stack.append(candidate)
                        seen_pure.add(candidate)


# ------------------------------------------------------------- batch helpers


def _dedup_first_key(keys, signs):
    """Drop repeated keys within one round, keeping the first occurrence.

    A key alone in two of its ``q`` cells shows up behind *both* pure
    cells; extracting it twice in one round would corrupt the table (the
    scalar peel naturally skips the second cell, which turns impure after
    the first extraction).  Order is preserved, so the round stays
    index-ascending.
    """
    if _np is not None and isinstance(keys, _np.ndarray):
        unique, first = _np.unique(keys, return_index=True)
        if unique.size == keys.size:
            return keys, signs
        order = _np.sort(first)
        return keys[order], signs[order]
    seen: set[int] = set()
    out_keys: list[int] = []
    out_signs: list[int] = []
    for key, sign in zip(keys, signs):
        if key not in seen:
            seen.add(key)
            out_keys.append(key)
            out_signs.append(sign)
    return out_keys, out_signs


def _filter_known(indices, signs, known):
    """Keep only pure-scan hits whose cells have actually been fed.

    A declared-but-unfed cell holds nothing but peel corrections, which can
    masquerade as a verified pure cell ``(−sign, key, check(key))`` —
    extracting one would un-peel a recovered key.
    """
    if _np is not None and isinstance(indices, _np.ndarray):
        keep = _np.asarray(known, dtype=bool)[indices]
        return indices[keep], signs[keep]
    kept_indices = []
    kept_signs = []
    for index, sign in zip(indices, signs):
        if known[index]:
            kept_indices.append(index)
            kept_signs.append(sign)
    return kept_indices, kept_signs
