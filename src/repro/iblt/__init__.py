"""Invertible Bloom Lookup Table substrate.

This package provides the sketch machinery under both the paper's robust
protocol and the exact-reconciliation baselines:

* :mod:`repro.iblt.hashing` — deterministic 64-bit mixers and salted hash
  families shared by both parties through public coins.
* :mod:`repro.iblt.table` — the IBLT itself (count / keySum / checkSum cells)
  with insert, delete, subtract and wire (de)serialisation.
* :mod:`repro.iblt.decode` — the peeling decoder and its result type.
* :mod:`repro.iblt.strata` — the strata estimator for set-difference size.
"""

from repro.iblt.decode import DecodeResult, decode
from repro.iblt.hashing import HashFamily, checksum64, splitmix64
from repro.iblt.minwise import MinwiseEstimator
from repro.iblt.strata import StrataEstimator
from repro.iblt.table import IBLT, IBLTConfig

__all__ = [
    "IBLT",
    "IBLTConfig",
    "DecodeResult",
    "decode",
    "HashFamily",
    "MinwiseEstimator",
    "StrataEstimator",
    "checksum64",
    "splitmix64",
]
