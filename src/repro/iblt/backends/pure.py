"""The pure-Python reference backend.

This is the original list-based cell engine extracted verbatim from
``repro.iblt.table``; it has no dependencies and defines the semantics every
other backend must reproduce bit-for-bit.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.iblt.backends.base import Backend
from repro.iblt.hashing import splitmix64


class PureBackend(Backend):
    """List-of-int cell arrays mutated one key at a time."""

    name = "pure"

    def __init__(self, config):
        super().__init__(config)
        self._hashes = config.hash_family()
        self.counts = [0] * config.cells
        self.key_sums = [0] * config.cells
        self.check_sums = [0] * config.cells

    # ------------------------------------------------------------- mutation

    def apply(self, key: int, delta: int) -> None:
        self._check_key(key)
        key_mix = splitmix64(key)
        check = splitmix64(self._check_premix ^ key_mix) & self._check_mask
        counts, key_sums, check_sums = self.counts, self.key_sums, self.check_sums
        for index in self._hashes.indices_from_mix(key_mix):
            counts[index] += delta
            key_sums[index] ^= key
            check_sums[index] ^= check

    def apply_batch(self, keys: Sequence[int], delta: int) -> None:
        if hasattr(keys, "tolist"):
            # numpy batches (e.g. the strata estimator's bulk stratum
            # grouping): numpy integer scalars lack ``bit_length``, so run
            # the reference loop over Python ints.
            keys = keys.tolist()
        for key in keys:
            self.apply(key, delta)

    def subtract(self, other: "PureBackend") -> "PureBackend":
        result = PureBackend(self.config)
        result.counts = [a - b for a, b in zip(self.counts, other.counts)]
        result.key_sums = [a ^ b for a, b in zip(self.key_sums, other.key_sums)]
        result.check_sums = [a ^ b for a, b in zip(self.check_sums, other.check_sums)]
        return result

    def copy(self) -> "PureBackend":
        clone = PureBackend(self.config)
        clone.counts = list(self.counts)
        clone.key_sums = list(self.key_sums)
        clone.check_sums = list(self.check_sums)
        return clone

    @staticmethod
    def _column(values) -> list:
        # numpy columns (the vectorized wire codec's bulk path) convert to
        # Python ints in one C pass; anything else element-wise.
        if hasattr(values, "tolist"):
            return values.tolist()
        return [int(v) for v in values]

    def load_rows(self, counts, key_sums, check_sums) -> None:
        self.counts = self._column(counts)
        self.key_sums = self._column(key_sums)
        self.check_sums = self._column(check_sums)

    # -------------------------------------------------------------- reading

    def cell(self, index: int) -> tuple[int, int, int]:
        return self.counts[index], self.key_sums[index], self.check_sums[index]

    def rows(self) -> Iterator[tuple[int, int, int]]:
        return zip(self.counts, self.key_sums, self.check_sums)

    def rows_arrays(self):
        # The live column lists (read-only by contract; no copies).
        return self.counts, self.key_sums, self.check_sums

    def is_empty(self) -> bool:
        return (
            all(c == 0 for c in self.counts)
            and all(k == 0 for k in self.key_sums)
            and all(s == 0 for s in self.check_sums)
        )

    def nonzero_cells(self) -> int:
        return sum(
            1
            for count, key, check in zip(self.counts, self.key_sums, self.check_sums)
            if count or key or check
        )

    # ------------------------------------------------------- batch peeling

    def pure_mask(self):
        # One fused pass over the three lists instead of a cell() tuple
        # build plus checksum per index (the decoder calls this every round).
        premix = self._check_premix
        mask = self._check_mask
        indices: list[int] = []
        signs: list[int] = []
        for index, (count, key, check) in enumerate(
            zip(self.counts, self.key_sums, self.check_sums)
        ):
            if count == 1 or count == -1:
                if splitmix64(premix ^ splitmix64(key)) & mask == check:
                    indices.append(index)
                    signs.append(count)
        return indices, signs

    def gather_cells(self, indices):
        key_sums = self.key_sums
        return [key_sums[index] for index in indices]

    def scatter_update(self, keys, signs) -> None:
        # apply(key, -sign) without re-validating keys that came straight
        # out of this table's own key_sum fields.
        counts, key_sums, check_sums = self.counts, self.key_sums, self.check_sums
        for key, sign in zip(keys, signs):
            key_mix = splitmix64(key)
            check = splitmix64(self._check_premix ^ key_mix) & self._check_mask
            for index in self._hashes.indices_from_mix(key_mix):
                counts[index] -= sign
                key_sums[index] ^= key
                check_sums[index] ^= check
