"""The backend contract: storage + mutation engine behind an IBLT.

A backend owns the three cell arrays (``count`` / ``keySum`` / ``checkSum``)
and performs every mutation over them; the :class:`~repro.iblt.table.IBLT`
facade keeps the wire format and the protocol-facing API.  Splitting the two
lets a vectorized (or, later, multi-process / native) engine slot in under
the protocol without touching any caller.

Every backend must be **bit-compatible**: for any sequence of operations the
produced cell contents — and therefore the serialized bytes and every decode
outcome — must be identical across backends.  The reference semantics are
those of :class:`~repro.iblt.backends.pure.PureBackend`;
``tests/test_backend_differential.py`` enforces the equivalence.
"""

from __future__ import annotations

import abc
from typing import Any, ClassVar, Iterator, Sequence

from repro.errors import ConfigError
from repro.iblt.hashing import splitmix64


class Backend(abc.ABC):
    """Cell storage and mutation engine for one IBLT instance.

    Parameters
    ----------
    config:
        The table's :class:`~repro.iblt.table.IBLTConfig`; backends derive
        their hash constants from it exactly as the reference does, so cell
        placement and checksums agree bit-for-bit.
    """

    #: Registry key; subclasses must override (e.g. ``"pure"``, ``"numpy"``).
    name: ClassVar[str]

    #: The three cell columns.  Storage is subclass-owned (lists on the pure
    #: backend, ndarrays on the vectorized one); the scalar reference
    #: primitives below only require index / in-place-mutate access.
    counts: Any
    key_sums: Any
    check_sums: Any

    def __init__(self, config):
        self.config = config
        # Shared-mix checksum constants (same values checksum64 computes).
        self._check_premix = splitmix64(config.seed ^ 0xC0FFEE)
        self._check_mask = (1 << config.checksum_bits) - 1

    # ------------------------------------------------------------ capability

    @classmethod
    def available(cls) -> bool:
        """True when this backend's dependencies are importable."""
        return True

    @classmethod
    def supports(cls, config) -> bool:
        """True when this backend can host tables of this shape.

        ``resolve_backend("auto", ...)`` skips backends whose ``supports``
        returns False (e.g. the numpy backend with keys wider than 64 bits).
        """
        return True

    # ------------------------------------------------------------- mutation

    @abc.abstractmethod
    def apply(self, key: int, delta: int) -> None:
        """Insert (``delta=+1``) or delete (``-1``) a single key."""

    @abc.abstractmethod
    def apply_batch(self, keys: Sequence[int], delta: int) -> None:
        """Insert or delete a whole batch of keys.

        Must be equivalent to ``for key in keys: self.apply(key, delta)``
        (duplicates included); batches may be empty or larger than the
        table.  Keys are validated exactly like single-key updates.
        """

    @abc.abstractmethod
    def subtract(self, other: "Backend") -> "Backend":
        """Cell-wise ``self - other`` into a fresh backend of this class.

        ``other`` is guaranteed to be the same class with an equal config
        (the IBLT facade converts foreign backends first).
        """

    @abc.abstractmethod
    def copy(self) -> "Backend":
        """Deep copy (the decoder peels destructively)."""

    @abc.abstractmethod
    def load_rows(
        self,
        counts: Sequence[int],
        key_sums: Sequence[int],
        check_sums: Sequence[int],
    ) -> None:
        """Overwrite all cells from parallel sequences (deserialisation)."""

    # -------------------------------------------------------------- reading

    @abc.abstractmethod
    def cell(self, index: int) -> tuple[int, int, int]:
        """``(count, key_sum, check_sum)`` of one cell, as Python ints."""

    @abc.abstractmethod
    def rows(self) -> Iterator[tuple[int, int, int]]:
        """All cells in index order, as Python-int triples (serialisation)."""

    def rows_arrays(self) -> tuple[Sequence[int], Sequence[int], Sequence[int]]:
        """All cells as three parallel columns (counts, key_sums, check_sums).

        The wire codec's bulk read side: array backends return their native
        column arrays so a whole table serialises without a per-cell Python
        round-trip.  The returned sequences are backend-owned — callers must
        treat them as read-only.  This reference implementation derives the
        columns from :meth:`rows`, so third-party backends stay correct
        (if slow) without overriding.
        """
        counts: list[int] = []
        key_sums: list[int] = []
        check_sums: list[int] = []
        for count, key, check in self.rows():
            counts.append(count)
            key_sums.append(key)
            check_sums.append(check)
        return counts, key_sums, check_sums

    @abc.abstractmethod
    def is_empty(self) -> bool:
        """True when every cell is zero."""

    @abc.abstractmethod
    def nonzero_cells(self) -> int:
        """Number of cells with any nonzero field."""

    # ------------------------------------------------------------- peeling

    def cell_is_pure(self, index: int) -> int:
        """``+1``/``-1`` if the cell holds exactly one checksum-verified key
        from the corresponding side, else ``0``."""
        count, key, check = self.cell(index)
        if count not in (1, -1):
            return 0
        expected = splitmix64(self._check_premix ^ splitmix64(key)) & self._check_mask
        return count if check == expected else 0

    def pure_cells(self) -> list[int]:
        """Indices of all pure cells, ascending (the decoder's seed stack).

        Backends may override with a batch scan; the result order is part
        of the contract (it fixes the peel order across backends).
        """
        return [int(index) for index in self.pure_mask()[0]]

    # ------------------------------------------------------- batch peeling
    #
    # The round-based decoder (see :mod:`repro.iblt.decode`) drives peeling
    # through three bulk primitives so array backends can do whole rounds
    # without a per-key Python round-trip.  The reference implementations
    # below are defined in terms of the scalar operations, so any backend
    # gets a correct (if slow) batch decode for free; the returned sequence
    # types are backend-native (lists here, arrays on vector backends).

    def pure_mask(self) -> tuple[Sequence[int], Sequence[int]]:
        """Parallel ``(indices, signs)`` of every pure cell, index-ascending.

        ``signs[j]`` is the ``cell_is_pure`` verdict (``+1``/``-1``) of cell
        ``indices[j]``.  The ascending order is part of the contract: it
        fixes the batch decoder's round-major peel order across backends.
        """
        indices: list[int] = []
        signs: list[int] = []
        for index in range(self.config.cells):
            sign = self.cell_is_pure(index)
            if sign:
                indices.append(index)
                signs.append(sign)
        return indices, signs

    def gather_cells(self, indices: Sequence[int]) -> Sequence[int]:
        """The ``key_sum`` field of each listed cell, in the given order."""
        return [self.cell(int(index))[1] for index in indices]

    def scatter_update(self, keys: Sequence[int], signs: Sequence[int]) -> None:
        """Remove a batch of peeled keys from their cells.

        Equivalent to ``for key, sign in zip(keys, signs): self.apply(key,
        -sign)`` — a positive-sign (Alice-side) key is deleted, a
        negative-sign (Bob-side) key re-inserted.  Keys come from the
        table's own ``key_sum`` fields, so they are already width-valid.
        """
        for key, sign in zip(keys, signs):
            self.apply(int(key), -int(sign))

    def merge_cells(
        self,
        indices: Sequence[int],
        counts: Sequence[int],
        key_sums: Sequence[int],
        check_sums: Sequence[int],
    ) -> None:
        """Accumulate arriving cell contents into the listed cells.

        ``counts[j]`` adds into cell ``indices[j]``'s count; ``key_sums[j]``
        / ``check_sums[j]`` XOR into the matching fields.  This is the
        intake primitive of the resumable decoder
        (:class:`repro.iblt.decode.PeelState`): a late-arriving cell joins a
        table that may already hold peel corrections for it, and add/XOR is
        exactly "true cell content combined with those corrections".
        Indices must be unique within one call — vectorized overrides may
        apply the update with fancy indexing, where duplicates would drop
        writes.  This scalar reference works for any backend exposing the
        three cell columns as indexable attributes.
        """
        own_counts = self.counts
        own_key_sums = self.key_sums
        own_check_sums = self.check_sums
        for index, count, key_sum, check_sum in zip(
            indices, counts, key_sums, check_sums
        ):
            index = int(index)
            own_counts[index] += int(count)
            own_key_sums[index] ^= int(key_sum)
            own_check_sums[index] ^= int(check_sum)

    # ----------------------------------------------------------- validation

    def _check_key(self, key: int) -> None:
        """Reject negative or over-wide keys with the reference messages.

        Raises :class:`~repro.errors.ConfigError`, which subclasses
        ``ValueError`` so pre-existing callers catching ``ValueError``
        keep working.
        """
        if key < 0:
            raise ConfigError(f"keys must be non-negative, got {key}")
        if key.bit_length() > self.config.key_bits:
            raise ConfigError(
                f"key {key} exceeds configured key width "
                f"({key.bit_length()} > {self.config.key_bits} bits)"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(cells={self.config.cells})"
