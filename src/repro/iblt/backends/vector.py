"""The numpy-vectorized backend: batch cell mutation over uint64 arrays.

Cells live in three contiguous arrays (``int64`` counts, ``uint64`` key and
checksum XOR accumulators).  Batch updates hash the whole key vector through
a vectorized splitmix64 and scatter with unbuffered ufuncs (``np.add.at`` /
``np.bitwise_xor.at``), so duplicate cell indices within one batch accumulate
exactly like sequential single-key updates.

The backend is bit-compatible with :class:`~repro.iblt.backends.pure.
PureBackend` — same cell placement, same checksums, same serialized bytes —
but only for keys at most 64 bits wide (``supports`` reports this, and
``"auto"`` resolution falls back to the pure backend for wider keys).

numpy is an optional dependency: importing this module without numpy
installed works, constructing the backend does not.
"""

from __future__ import annotations

from typing import Iterator, Sequence

try:  # soft dependency: the library must import (and run) without numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

from repro.errors import ConfigError
from repro.iblt.backends.base import Backend
from repro.iblt.hashing import _GOLDEN, _MIX1, _MIX2, splitmix64

if _np is not None:
    _U64 = _np.uint64
    _C_GOLDEN = _U64(_GOLDEN)
    _C_MIX1 = _U64(_MIX1)
    _C_MIX2 = _U64(_MIX2)
    _S30, _S27, _S31 = _U64(30), _U64(27), _U64(31)


def _splitmix64_vec(values: "_np.ndarray") -> "_np.ndarray":
    """Vectorized :func:`repro.iblt.hashing.splitmix64` over uint64 arrays.

    uint64 arithmetic wraps mod 2^64, matching the reference's explicit
    masking.
    """
    z = values + _C_GOLDEN
    z = (z ^ (z >> _S30)) * _C_MIX1
    z = (z ^ (z >> _S27)) * _C_MIX2
    return z ^ (z >> _S31)


class NumpyBackend(Backend):
    """Contiguous-array cell engine with vectorized batch updates."""

    name = "numpy"

    def __init__(self, config):
        if _np is None:
            raise ConfigError(
                "the 'numpy' IBLT backend requires numpy, which is not "
                "installed; use backend='pure' (or 'auto')"
            )
        if config.key_bits > 64:
            raise ConfigError(
                f"the 'numpy' IBLT backend stores keys in uint64 cells and "
                f"cannot host key_bits={config.key_bits}; use backend='pure' "
                "(or 'auto')"
            )
        super().__init__(config)
        self.counts = _np.zeros(config.cells, dtype=_np.int64)
        self.key_sums = _np.zeros(config.cells, dtype=_U64)
        self.check_sums = _np.zeros(config.cells, dtype=_U64)
        family = config.hash_family()
        self._partition = config.cells // config.q
        self._premixed = family.premixed_salts  # python ints (scalar path)
        self._premixed_vec = _np.array(family.premixed_salts, dtype=_U64)
        self._premix_u64 = _U64(self._check_premix)
        self._mask_u64 = _U64(self._check_mask)

    @classmethod
    def available(cls) -> bool:
        return _np is not None

    @classmethod
    def supports(cls, config) -> bool:
        return cls.available() and config.key_bits <= 64

    # ----------------------------------------------------------- key intake

    def _as_key_array(self, keys) -> "_np.ndarray":
        """Validate a batch and return it as a uint64 array.

        Rejections raise the same ``ValueError`` as the reference backend's
        per-key check.
        """
        if isinstance(keys, _np.ndarray):
            if keys.dtype.kind not in "ui":
                raise ConfigError(
                    f"keys must be an integer array, got dtype {keys.dtype}"
                )
            if keys.dtype.kind == "i" and keys.size and keys.min() < 0:
                self._check_key(int(keys.min()))  # raises "non-negative"
            arr = keys.astype(_U64, copy=False)
        else:
            # Check negatives up front: NumPy 1.x silently wraps negative
            # Python ints into uint64 instead of raising like 2.x does.
            if len(keys) and min(keys) < 0:
                self._check_key(int(min(keys)))  # raises "non-negative"
            try:
                arr = _np.asarray(keys, dtype=_U64)
            except (OverflowError, ValueError, TypeError):
                # A key did not fit uint64 (negative or >= 2^64); re-run the
                # reference validation to raise the exact per-key error.
                for key in keys:
                    self._check_key(int(key))
                raise  # pragma: no cover - the loop above must have raised
        key_bits = self.config.key_bits
        if key_bits < 64 and arr.size:
            oversized = arr >> _U64(key_bits)
            if oversized.any():
                self._check_key(int(arr[oversized != 0][0]))  # raises "width"
        return arr

    # ------------------------------------------------------------- mutation

    def apply(self, key: int, delta: int) -> None:
        # Scalar path (peeling, incremental updates): plain-int hashing is
        # faster than spinning up array machinery for one key.
        self._check_key(key)
        key_mix = splitmix64(key)
        check = splitmix64(self._check_premix ^ key_mix) & self._check_mask
        partition = self._partition
        counts, key_sums, check_sums = self.counts, self.key_sums, self.check_sums
        key_u64, check_u64 = _U64(key), _U64(check)
        for i, premixed in enumerate(self._premixed):
            index = i * partition + splitmix64(premixed ^ key_mix) % partition
            counts[index] += delta
            key_sums[index] ^= key_u64
            check_sums[index] ^= check_u64

    def apply_batch(self, keys: Sequence[int], delta: int) -> None:
        arr = self._as_key_array(keys)
        if arr.size == 0:
            return
        self._scatter(arr, delta)

    def _scatter(self, arr: "_np.ndarray", deltas) -> None:
        """Scatter count deltas and key/checksum XORs into every key's cells.

        ``deltas`` is a scalar (batch insert/delete) or a per-key int64
        array (peel removals).  The sole home of the vectorized cell
        placement — it must mirror the reference formula in
        :meth:`~repro.iblt.hashing.HashFamily.indices_from_mix` exactly.
        """
        key_mix = _splitmix64_vec(arr)
        checks = _splitmix64_vec(self._premix_u64 ^ key_mix) & self._mask_u64
        partition = _U64(self._partition)
        for i in range(self.config.q):
            indices = (
                (_splitmix64_vec(self._premixed_vec[i] ^ key_mix) % partition)
                .astype(_np.intp)
            )
            indices += i * self._partition
            # Unbuffered scatter: duplicate indices accumulate sequentially.
            _np.add.at(self.counts, indices, deltas)
            _np.bitwise_xor.at(self.key_sums, indices, arr)
            _np.bitwise_xor.at(self.check_sums, indices, checks)

    def subtract(self, other: "NumpyBackend") -> "NumpyBackend":
        result = NumpyBackend(self.config)
        _np.subtract(self.counts, other.counts, out=result.counts)
        _np.bitwise_xor(self.key_sums, other.key_sums, out=result.key_sums)
        _np.bitwise_xor(self.check_sums, other.check_sums, out=result.check_sums)
        return result

    def copy(self) -> "NumpyBackend":
        clone = NumpyBackend(self.config)
        clone.counts = self.counts.copy()
        clone.key_sums = self.key_sums.copy()
        clone.check_sums = self.check_sums.copy()
        return clone

    def load_rows(self, counts, key_sums, check_sums) -> None:
        if isinstance(counts, _np.ndarray):
            # Bulk path (the wire codec hands over whole arrays).
            self.counts = counts.astype(_np.int64, copy=True)
            self.key_sums = key_sums.astype(_U64, copy=True)
            self.check_sums = check_sums.astype(_U64, copy=True)
            return
        try:
            # One C-level conversion per column; uint64 holds keys and
            # checksums up to 2^64 - 1 (>= 2^63 included) directly.
            self.counts = _np.asarray(counts, dtype=_np.int64)
            self.key_sums = _np.asarray(key_sums, dtype=_U64)
            self.check_sums = _np.asarray(check_sums, dtype=_U64)
        except (OverflowError, TypeError, ValueError) as exc:
            raise ConfigError(
                f"cell rows do not fit the numpy backend's native widths "
                f"(int64 counts, uint64 sums): {exc}"
            ) from exc

    # -------------------------------------------------------------- reading

    def cell(self, index: int) -> tuple[int, int, int]:
        return (
            int(self.counts[index]),
            int(self.key_sums[index]),
            int(self.check_sums[index]),
        )

    def rows(self) -> Iterator[tuple[int, int, int]]:
        return zip(
            self.counts.tolist(), self.key_sums.tolist(), self.check_sums.tolist()
        )

    def rows_arrays(self):
        # The live cell arrays (read-only by contract; no copies).
        return self.counts, self.key_sums, self.check_sums

    def is_empty(self) -> bool:
        return not (
            self.counts.any() or self.key_sums.any() or self.check_sums.any()
        )

    def nonzero_cells(self) -> int:
        return int(
            ((self.counts != 0) | (self.key_sums != 0) | (self.check_sums != 0)).sum()
        )

    # ------------------------------------------------------------- peeling

    def pure_cells(self) -> list[int]:
        return self.pure_mask()[0].tolist()

    def pure_mask(self):
        """Vectorized pure-cell scan: one sign test + one checksum pass."""
        candidates = _np.flatnonzero(_np.abs(self.counts) == 1)
        keys = self.key_sums[candidates]
        expected = (
            _splitmix64_vec(self._premix_u64 ^ _splitmix64_vec(keys))
            & self._mask_u64
        )
        verified = candidates[self.check_sums[candidates] == expected]
        return verified, self.counts[verified]

    def gather_cells(self, indices):
        return self.key_sums[indices]

    def scatter_update(self, keys, signs) -> None:
        """One vectorized round of peel removals (``apply(key, -sign)``).

        Reuses the batch scatter kernel with per-key deltas, so keys
        sharing cells within one round accumulate exactly like sequential
        removals.
        """
        keys = _np.asarray(keys, dtype=_U64)
        if keys.size == 0:
            return
        self._scatter(keys, -_np.asarray(signs, dtype=_np.int64))

    def merge_cells(self, indices, counts, key_sums, check_sums) -> None:
        """Vectorized late-cell intake (see the reference docstring).

        Fancy indexing instead of ``.at`` scatters — the contract requires
        unique indices per call, so buffered updates are safe and faster.
        """
        index_array = _np.asarray(indices, dtype=_np.intp)
        if index_array.size == 0:
            return
        self.counts[index_array] += _np.asarray(counts, dtype=_np.int64)
        self.key_sums[index_array] ^= _np.asarray(key_sums, dtype=_U64)
        self.check_sums[index_array] ^= _np.asarray(check_sums, dtype=_U64)
