"""Pluggable IBLT cell-storage backends.

The IBLT facade (:class:`repro.iblt.table.IBLT`) delegates all cell storage
and mutation to a :class:`~repro.iblt.backends.base.Backend`.  Two ship with
the library:

``pure``
    The list-based pure-Python reference — always available, defines the
    semantics (:class:`~repro.iblt.backends.pure.PureBackend`).
``numpy``
    Vectorized batch updates over contiguous ``uint64`` arrays — requires
    numpy and keys at most 64 bits wide
    (:class:`~repro.iblt.backends.vector.NumpyBackend`).

Selection is by name: ``IBLT(config, backend="numpy")``, or protocol-wide
via ``ProtocolConfig(backend=...)`` / the CLI's ``--backend`` flag.  The
name ``"auto"`` picks the fastest available backend that supports the
table's shape, falling back to ``pure``.

Third-party backends register themselves::

    from repro.iblt.backends import Backend, register_backend

    @register_backend
    class MyBackend(Backend):
        name = "mine"
        ...

after which ``backend="mine"`` works everywhere a backend name is accepted.
All backends must be bit-compatible with the reference (see the
:class:`Backend` docstring); run ``tests/test_backend_differential.py``
against a new backend before trusting it.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.iblt.backends.base import Backend
from repro.iblt.backends.pure import PureBackend
from repro.iblt.backends.vector import NumpyBackend

#: Fallback / reference backend name.
DEFAULT_BACKEND = "pure"

#: ``"auto"`` tries these in order and takes the first available backend
#: that supports the table's config.
AUTO_PREFERENCE = ("numpy", "pure")

_REGISTRY: dict[str, type[Backend]] = {}


def register_backend(cls: type[Backend]) -> type[Backend]:
    """Register a backend class under ``cls.name`` (usable as a decorator)."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name or name == "auto":
        raise ConfigError(
            f"backend class {cls.__name__} needs a non-empty string "
            "'name' attribute (and 'auto' is reserved)"
        )
    _REGISTRY[name] = cls
    return cls


def backend_names() -> list[str]:
    """Every registered backend name, sorted (available or not)."""
    return sorted(_REGISTRY)


def registered_backends() -> dict[str, type[Backend]]:
    """Name -> class for every registered backend, available or not.

    Unlike :func:`get_backend` this never raises for backends whose
    dependencies are missing — static analysis (``repro.lint``'s RPL006
    contract check) inspects classes it may not be able to instantiate.
    """
    return dict(_REGISTRY)


def available_backends() -> list[str]:
    """Registered backends whose dependencies are importable, sorted."""
    return [name for name in sorted(_REGISTRY) if _REGISTRY[name].available()]


def get_backend(name: str) -> type[Backend]:
    """Look up a registered backend class by name.

    Raises :class:`~repro.errors.ConfigError` for unknown names and for
    backends whose dependencies are missing.
    """
    if name not in _REGISTRY:
        raise ConfigError(
            f"unknown IBLT backend {name!r}; registered backends: "
            f"{', '.join(backend_names())} (or 'auto')"
        )
    cls = _REGISTRY[name]
    if not cls.available():
        raise ConfigError(
            f"IBLT backend {name!r} is registered but not available "
            "(missing optional dependency?)"
        )
    return cls


def resolve_backend(name: str | None, config) -> type[Backend]:
    """Resolve a backend *name* to a class for a concrete table config.

    ``None`` / ``"auto"`` return the first entry of :data:`AUTO_PREFERENCE`
    that is available and supports ``config``; an explicit name resolves
    strictly and raises :class:`~repro.errors.ConfigError` when that backend
    cannot host the config (better a loud failure than a silent fallback).
    """
    if name is None or name == "auto":
        for candidate in AUTO_PREFERENCE:
            cls = _REGISTRY.get(candidate)
            if cls is not None and cls.available() and cls.supports(config):
                return cls
        return _REGISTRY[DEFAULT_BACKEND]
    cls = get_backend(name)
    if not cls.supports(config):
        raise ConfigError(
            f"IBLT backend {name!r} does not support this table shape "
            f"(cells={config.cells}, key_bits={config.key_bits}); "
            "use backend='auto' to fall back automatically"
        )
    return cls


register_backend(PureBackend)
register_backend(NumpyBackend)

__all__ = [
    "AUTO_PREFERENCE",
    "Backend",
    "DEFAULT_BACKEND",
    "NumpyBackend",
    "PureBackend",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend",
]
