"""Finite-field polynomial substrate.

Implements arithmetic over the prime field GF(p) with ``p = 2^61 - 1``
(a Mersenne prime comfortably larger than any packed point key in this
library), dense polynomial algebra, rational-function interpolation, and
root finding.  This is the machinery behind the characteristic-polynomial
(Minsky–Trachtenberg–Zippel) exact-reconciliation baseline.
"""

from repro.gf.factor import roots_of_split_polynomial
from repro.gf.field import MERSENNE61, PrimeField
from repro.gf.interp import RationalFunction, interpolate_rational
from repro.gf.poly import Poly

__all__ = [
    "MERSENNE61",
    "Poly",
    "PrimeField",
    "RationalFunction",
    "interpolate_rational",
    "roots_of_split_polynomial",
]
