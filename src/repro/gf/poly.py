"""Dense univariate polynomials over GF(p).

Coefficients are stored low-degree first with no trailing zeros; the zero
polynomial has an empty coefficient tuple and degree ``-1``.  Instances are
immutable value objects tied to a :class:`~repro.gf.field.PrimeField`.

The operations here are exactly what characteristic-polynomial set
reconciliation needs: ring arithmetic, Euclidean division, monic GCD,
evaluation, construction from roots, and modular exponentiation of a
polynomial base (for Cantor–Zassenhaus root finding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigError
from repro.gf.field import PrimeField


@dataclass(frozen=True)
class Poly:
    """An immutable polynomial over a prime field.

    Attributes
    ----------
    field:
        The coefficient field.
    coeffs:
        Tuple of coefficients, index ``i`` multiplying ``x^i``; never ends
        in a zero.
    """

    field: PrimeField
    coeffs: tuple[int, ...]

    # ------------------------------------------------------------ construct

    @classmethod
    def make(cls, field: PrimeField, coeffs: Iterable[int]) -> "Poly":
        """Build a polynomial, normalising coefficients and stripping zeros."""
        reduced = [field.normalize(c) for c in coeffs]
        while reduced and reduced[-1] == 0:
            reduced.pop()
        return cls(field, tuple(reduced))

    @classmethod
    def zero(cls, field: PrimeField) -> "Poly":
        """The zero polynomial."""
        return cls(field, ())

    @classmethod
    def one(cls, field: PrimeField) -> "Poly":
        """The constant polynomial 1."""
        return cls(field, (1,))

    @classmethod
    def x(cls, field: PrimeField) -> "Poly":
        """The monomial x."""
        return cls(field, (0, 1))

    @classmethod
    def constant(cls, field: PrimeField, value: int) -> "Poly":
        """A constant polynomial."""
        return cls.make(field, [value])

    @classmethod
    def from_roots(cls, field: PrimeField, roots: Sequence[int]) -> "Poly":
        """The monic polynomial ``prod (x - r)`` — a characteristic polynomial.

        Built by doubling (divide and conquer) so constructing a set's
        characteristic polynomial costs ``O(n log^2 n)`` coefficient
        operations instead of ``O(n^2)`` for the naive left fold at large n
        (the multiplications here are still schoolbook, so the win is the
        balanced tree shape, not FFT).
        """
        if not roots:
            return cls.one(field)
        leaves = [cls.make(field, [field.neg(field.normalize(r)), 1]) for r in roots]
        while len(leaves) > 1:
            paired = []
            for i in range(0, len(leaves) - 1, 2):
                paired.append(leaves[i] * leaves[i + 1])
            if len(leaves) % 2:
                paired.append(leaves[-1])
            leaves = paired
        return leaves[0]

    # -------------------------------------------------------------- queries

    @property
    def degree(self) -> int:
        """Degree, with the zero polynomial at -1."""
        return len(self.coeffs) - 1

    @property
    def is_zero(self) -> bool:
        """True for the zero polynomial."""
        return not self.coeffs

    @property
    def leading(self) -> int:
        """Leading coefficient (0 for the zero polynomial)."""
        return self.coeffs[-1] if self.coeffs else 0

    @property
    def is_monic(self) -> bool:
        """True when the leading coefficient is 1."""
        return self.leading == 1

    def __call__(self, point: int) -> int:
        """Evaluate by Horner's rule."""
        field = self.field
        point = field.normalize(point)
        acc = 0
        for coeff in reversed(self.coeffs):
            acc = (acc * point + coeff) % field.p
        return acc

    # ------------------------------------------------------------- arithmetic

    def _require_same_field(self, other: "Poly") -> None:
        if self.field != other.field:
            raise ConfigError("polynomials over different fields")

    def __add__(self, other: "Poly") -> "Poly":
        self._require_same_field(other)
        field = self.field
        longer, shorter = (self.coeffs, other.coeffs)
        if len(longer) < len(shorter):
            longer, shorter = shorter, longer
        summed = list(longer)
        for i, coeff in enumerate(shorter):
            summed[i] = field.add(summed[i], coeff)
        return Poly.make(field, summed)

    def __neg__(self) -> "Poly":
        field = self.field
        return Poly(field, tuple(field.neg(c) for c in self.coeffs))

    def __sub__(self, other: "Poly") -> "Poly":
        return self + (-other)

    def __mul__(self, other: "Poly") -> "Poly":
        self._require_same_field(other)
        if self.is_zero or other.is_zero:
            return Poly.zero(self.field)
        p = self.field.p
        product = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                product[i + j] = (product[i + j] + a * b) % p
        return Poly.make(self.field, product)

    def scale(self, scalar: int) -> "Poly":
        """Multiply every coefficient by a field scalar."""
        field = self.field
        scalar = field.normalize(scalar)
        if scalar == 0:
            return Poly.zero(field)
        return Poly(field, tuple(field.mul(c, scalar) for c in self.coeffs))

    def shift(self, exponent: int) -> "Poly":
        """Multiply by ``x^exponent``."""
        if exponent < 0:
            raise ConfigError(f"shift exponent must be non-negative, got {exponent}")
        if self.is_zero:
            return self
        return Poly(self.field, (0,) * exponent + self.coeffs)

    def divmod(self, divisor: "Poly") -> tuple["Poly", "Poly"]:
        """Euclidean division: return (quotient, remainder)."""
        self._require_same_field(divisor)
        if divisor.is_zero:
            raise ZeroDivisionError("polynomial division by zero")  # repro-lint: waive[RPL003] reason=mirrors Python's own division-by-zero semantics for field arithmetic
        field = self.field
        if self.degree < divisor.degree:
            return Poly.zero(field), self
        remainder = list(self.coeffs)
        divisor_coeffs = divisor.coeffs
        inv_lead = field.inv(divisor.leading)
        quotient = [0] * (len(remainder) - len(divisor_coeffs) + 1)
        p = field.p
        for i in range(len(quotient) - 1, -1, -1):
            factor = remainder[i + len(divisor_coeffs) - 1] * inv_lead % p
            if factor == 0:
                continue
            quotient[i] = factor
            for j, dc in enumerate(divisor_coeffs):
                remainder[i + j] = (remainder[i + j] - factor * dc) % p
        return Poly.make(field, quotient), Poly.make(field, remainder)

    def __floordiv__(self, divisor: "Poly") -> "Poly":
        return self.divmod(divisor)[0]

    def __mod__(self, divisor: "Poly") -> "Poly":
        return self.divmod(divisor)[1]

    def monic(self) -> "Poly":
        """Scale to leading coefficient 1 (zero polynomial stays zero)."""
        if self.is_zero or self.is_monic:
            return self
        return self.scale(self.field.inv(self.leading))

    def gcd(self, other: "Poly") -> "Poly":
        """Monic greatest common divisor (Euclid)."""
        self._require_same_field(other)
        a, b = self, other
        while not b.is_zero:
            a, b = b, a % b
        return a.monic()

    def derivative(self) -> "Poly":
        """Formal derivative."""
        field = self.field
        return Poly.make(
            field,
            [field.mul(i, c) for i, c in enumerate(self.coeffs)][1:],
        )

    def powmod(self, exponent: int, modulus: "Poly") -> "Poly":
        """``self ** exponent mod modulus`` by square-and-multiply."""
        if exponent < 0:
            raise ConfigError(f"exponent must be non-negative, got {exponent}")
        if modulus.degree < 1:
            raise ConfigError("powmod modulus must have degree >= 1")
        result = Poly.one(self.field)
        base = self % modulus
        while exponent:
            if exponent & 1:
                result = (result * base) % modulus
            base = (base * base) % modulus
            exponent >>= 1
        return result

    def __repr__(self) -> str:
        if self.is_zero:
            return "Poly(0)"
        terms = [
            f"{c}*x^{i}" if i else str(c)
            for i, c in enumerate(self.coeffs)
            if c
        ]
        return f"Poly({' + '.join(terms)})"
