"""Root finding for polynomials that split into distinct linear factors.

Characteristic-polynomial reconciliation produces numerator/denominator
polynomials whose roots are precisely the set-difference elements — products
of *distinct* linear factors over GF(p).  Extracting the roots is therefore
equal-degree factorisation at degree 1: the classic randomised
Cantor–Zassenhaus split.

For odd ``p``, ``x^((p-1)/2) - 1`` vanishes exactly on the quadratic
residues; shifting by a random ``a`` makes each root of the target land on
either side of the split with probability ~1/2 independently, so
``gcd(f, (x+a)^((p-1)/2) - 1)`` cuts ``f`` roughly in half.  Expected work is
``O(deg^2 log p)`` coefficient operations per level, ``O(log deg)`` levels.
"""

from __future__ import annotations

import random

from repro.errors import ReproError
from repro.gf.poly import Poly


class NotSplitError(ReproError):
    """The polynomial is not a product of distinct linear factors.

    Reconciliation callers treat this as "the difference bound was wrong":
    the interpolated polynomial does not correspond to a plausible set.
    """


def is_split_with_distinct_roots(poly: Poly) -> bool:
    """Check that ``poly`` splits into distinct linear factors over GF(p).

    ``x^p - x`` is the product of all linear polynomials, so ``poly`` splits
    with distinct roots iff ``gcd(x^p - x, poly) == monic(poly)``.
    Costs one ``O(log p)`` powmod — cheap insurance before factoring.
    """
    if poly.is_zero:
        return False
    if poly.degree == 0:
        return True
    field = poly.field
    x = Poly.x(field)
    x_to_p = x.powmod(field.p, poly)
    frobenius_minus_x = (x_to_p - x) % poly
    return frobenius_minus_x.is_zero


def roots_of_split_polynomial(
    poly: Poly,
    *,
    rng: random.Random | None = None,
    verify: bool = True,
) -> list[int]:
    """Return all roots of a product of distinct linear factors.

    Parameters
    ----------
    poly:
        The polynomial to factor; must be nonzero.
    rng:
        Randomness for the Cantor–Zassenhaus splits (deterministic seed by
        default so protocol runs are reproducible).
    verify:
        When true, first verify the split-with-distinct-roots precondition
        and raise :class:`NotSplitError` if it fails.  Skipping the check
        saves a powmod when the caller has already validated degrees.

    Returns
    -------
    list of int
        The roots, in ascending order.
    """
    if poly.is_zero:
        raise NotSplitError("zero polynomial has every element as a root")
    if verify and not is_split_with_distinct_roots(poly):
        raise NotSplitError(
            f"degree-{poly.degree} polynomial does not split into distinct "
            "linear factors over GF(p)"
        )
    rng = rng or random.Random(0xC2A55)
    field = poly.field
    half = (field.p - 1) // 2
    roots: list[int] = []
    stack = [poly.monic()]
    while stack:
        current = stack.pop()
        if current.degree == 0:
            continue
        if current.degree == 1:
            # x + c has root -c.
            roots.append(field.neg(current.coeffs[0]))
            continue
        # Random shift: g = gcd(current, (x + a)^((p-1)/2) - 1).
        shift = Poly.make(field, [field.random_element(rng), 1])
        legendre = shift.powmod(half, current) - Poly.one(field)
        divisor = current.gcd(legendre)
        if divisor.degree in (0, current.degree):
            stack.append(current)  # unlucky split; retry with a new shift
            continue
        stack.append(divisor)
        stack.append((current // divisor).monic())
    roots.sort()
    return roots
