"""Rational-function interpolation over GF(p).

The heart of characteristic-polynomial reconciliation: Alice ships the values
of her characteristic polynomial ``chi_A`` at shared sample points; Bob
divides by his own ``chi_B`` and must recover the *reduced* rational function

    chi_A / chi_B  =  P / Q,   P = chi_{A \\ B},  Q = chi_{B \\ A},

from point evaluations alone.  Given degree bounds ``deg P <= d_p`` and
``deg Q <= d_q`` (with ``Q`` monic), a solution of the linear system

    P(z_i) - f_i * Q(z_i) = 0        for every sample (z_i, f_i)

with ``d_p + d_q + 1`` samples agrees with the true reduced function up to a
common polynomial factor, which a final GCD removes (Minsky, Trachtenberg &
Zippel 2003).  The solve is Gaussian elimination, ``O(m^3)`` field ops for
``m`` samples — entirely adequate for the difference sizes exact baselines
are benchmarked at, and deliberately transparent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ReconciliationFailure
from repro.gf.field import PrimeField
from repro.gf.poly import Poly


@dataclass(frozen=True)
class RationalFunction:
    """A reduced rational function P/Q with Q monic."""

    numerator: Poly
    denominator: Poly

    def __call__(self, point: int) -> int:
        """Evaluate at a point where the denominator does not vanish."""
        denominator_value = self.denominator(point)
        if denominator_value == 0:
            raise ZeroDivisionError(f"denominator vanishes at {point}")  # repro-lint: waive[RPL003] reason=mirrors Python's own division-by-zero semantics for field arithmetic
        field = self.numerator.field
        return field.div(self.numerator(point), denominator_value)


def _solve_linear_system(
    field: PrimeField, matrix: list[list[int]], rhs: list[int]
) -> list[int] | None:
    """Solve ``matrix @ x = rhs`` over GF(p) by Gaussian elimination.

    Returns one solution (free variables pinned to zero) or ``None`` when the
    system is inconsistent.  ``matrix`` is mutated.
    """
    n_rows = len(matrix)
    n_cols = len(matrix[0]) if matrix else 0
    p = field.p

    pivot_cols: list[int] = []
    row = 0
    for col in range(n_cols):
        pivot = next(
            (r for r in range(row, n_rows) if matrix[r][col] % p != 0), None
        )
        if pivot is None:
            continue
        matrix[row], matrix[pivot] = matrix[pivot], matrix[row]
        rhs[row], rhs[pivot] = rhs[pivot], rhs[row]
        inv = field.inv(matrix[row][col])
        matrix[row] = [value * inv % p for value in matrix[row]]
        rhs[row] = rhs[row] * inv % p
        for other in range(n_rows):
            if other == row:
                continue
            factor = matrix[other][col] % p
            if factor == 0:
                continue
            matrix[other] = [
                (a - factor * b) % p for a, b in zip(matrix[other], matrix[row])
            ]
            rhs[other] = (rhs[other] - factor * rhs[row]) % p
        pivot_cols.append(col)
        row += 1
        if row == n_rows:
            break

    # Inconsistent rows: all-zero coefficients with nonzero rhs.
    for r in range(row, n_rows):
        if rhs[r] % p != 0 and all(v % p == 0 for v in matrix[r]):
            return None

    solution = [0] * n_cols
    for r, col in enumerate(pivot_cols):
        solution[col] = rhs[r] % p
    return solution


def interpolate_rational(
    field: PrimeField,
    points: Sequence[int],
    values: Sequence[int],
    numerator_degree: int,
    denominator_degree: int,
) -> RationalFunction:
    """Recover the reduced rational function through the given evaluations.

    Parameters
    ----------
    field:
        The coefficient field.
    points, values:
        Samples ``f(z_i) = values[i]``; ``len(points)`` must be at least
        ``numerator_degree + denominator_degree + 1`` and the points must be
        distinct.
    numerator_degree, denominator_degree:
        Upper bounds on the degrees of P and Q.  Q is constrained monic of
        degree exactly ``denominator_degree`` in the solve; the final
        reduction cancels any shared factor, so overshooting the true
        degrees by the *same* slack on both sides is harmless (that is what
        lets reconciliation guess only the difference *bound*).  Callers
        must therefore split a total bound ``m`` as
        ``((m + delta) / 2, (m - delta) / 2)`` where
        ``delta = deg P - deg Q`` is the (known) set-size difference.
        Supplying more samples than ``d_p + d_q + 1`` turns the extras into
        verification points: a too-small bound then fails loudly instead of
        fitting garbage.

    Raises
    ------
    ReconciliationFailure
        If no rational function of the given degrees passes through the
        samples (the degree bounds were wrong) or the samples are malformed.
    """
    if len(points) != len(values):
        raise ReconciliationFailure("points/values length mismatch")
    if len(set(points)) != len(points):
        raise ReconciliationFailure("evaluation points must be distinct")
    needed = numerator_degree + denominator_degree + 1
    if len(points) < needed:
        raise ReconciliationFailure(
            f"need {needed} samples for degrees "
            f"({numerator_degree}, {denominator_degree}), got {len(points)}"
        )
    if numerator_degree < 0 or denominator_degree < 0:
        raise ReconciliationFailure("degree bounds must be non-negative")

    p = field.p
    n_p = numerator_degree + 1  # unknown numerator coefficients
    n_q = denominator_degree  # unknown denominator coefficients (monic)

    matrix: list[list[int]] = []
    rhs: list[int] = []
    for z, f in zip(points, values):
        z = field.normalize(z)
        f = field.normalize(f)
        row = [0] * (n_p + n_q)
        power = 1
        for j in range(n_p):
            row[j] = power
            power = power * z % p
        power = 1
        for j in range(n_q):
            row[n_p + j] = (-f * power) % p
            power = power * z % p
        # Monic leading term of Q moves to the right-hand side.
        matrix.append(row)
        rhs.append(f * pow(z, denominator_degree, p) % p)

    solution = _solve_linear_system(field, matrix, rhs)
    if solution is None:
        raise ReconciliationFailure(
            "no rational function of the given degrees fits the samples "
            "(difference bound too small?)"
        )

    numerator = Poly.make(field, solution[:n_p])
    denominator = Poly.make(field, solution[n_p:] + [1])

    common = numerator.gcd(denominator)
    if common.degree > 0:
        numerator = numerator // common
        denominator = denominator // common
    denominator = denominator.monic()

    # Consistency check on the samples themselves — catches inconsistent
    # systems that elimination "solved" with pinned free variables.
    for z, f in zip(points, values):
        denominator_value = denominator(z)
        if denominator_value == 0:
            continue
        if field.div(numerator(z), denominator_value) != field.normalize(f):
            raise ReconciliationFailure(
                "interpolated rational function fails to reproduce samples "
                "(difference bound too small?)"
            )
    return RationalFunction(numerator, denominator)
