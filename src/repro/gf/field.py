"""Prime-field arithmetic.

A :class:`PrimeField` is a tiny value object wrapping a prime modulus with
the handful of operations the polynomial layer needs.  The default modulus is
the Mersenne prime ``2^61 - 1``: large enough that every packed point key in
this library (≤ 60 bits) is a distinct field element, small enough that
Python's fixed-size int fast path applies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigError

#: The default modulus, 2^61 - 1.
MERSENNE61 = (1 << 61) - 1


def _is_probable_prime(n: int) -> bool:
    """Deterministic Miller–Rabin for n < 3.3e24 (fixed witness set)."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for prime in small_primes:
        if n % prime == 0:
            return n == prime
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for witness in small_primes:
        x = pow(witness, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclass(frozen=True)
class PrimeField:
    """The field GF(p) for a prime ``p``.

    >>> field = PrimeField(7)
    >>> field.mul(3, 5)
    1
    >>> field.inv(3)
    5
    """

    p: int = MERSENNE61

    def __post_init__(self) -> None:
        if self.p < 2 or not _is_probable_prime(self.p):
            raise ConfigError(f"modulus {self.p} is not prime")

    def normalize(self, a: int) -> int:
        """Map an arbitrary integer into [0, p)."""
        return a % self.p

    def add(self, a: int, b: int) -> int:
        """a + b (mod p)."""
        result = a + b
        return result - self.p if result >= self.p else result

    def sub(self, a: int, b: int) -> int:
        """a - b (mod p)."""
        result = a - b
        return result + self.p if result < 0 else result

    def neg(self, a: int) -> int:
        """-a (mod p)."""
        return self.p - a if a else 0

    def mul(self, a: int, b: int) -> int:
        """a * b (mod p)."""
        return a * b % self.p

    def inv(self, a: int) -> int:
        """Multiplicative inverse of a nonzero element (Fermat)."""
        if a % self.p == 0:
            raise ZeroDivisionError("inverse of zero in GF(p)")  # repro-lint: waive[RPL003] reason=mirrors Python's own division-by-zero semantics for field arithmetic
        return pow(a, self.p - 2, self.p)

    def div(self, a: int, b: int) -> int:
        """a / b (mod p)."""
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        """a ** e (mod p); negative exponents invert first."""
        if e < 0:
            return pow(self.inv(a), -e, self.p)
        return pow(a, e, self.p)

    def random_element(self, rng: random.Random, *, nonzero: bool = False) -> int:
        """A uniform element, optionally excluding zero."""
        low = 1 if nonzero else 0
        return rng.randrange(low, self.p)
