"""Human- and machine-readable summaries of a protocol execution."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.net.channel import Direction, Message, SimulatedChannel, count_rounds


@dataclass(frozen=True)
class Transcript:
    """Immutable summary of one reconciliation run.

    Built from a :class:`~repro.net.channel.SimulatedChannel` (or any
    recorded message sequence) after the protocol finishes; this is what
    benchmark harnesses aggregate.
    """

    total_bits: int
    alice_to_bob_bits: int
    bob_to_alice_bits: int
    rounds: int
    message_labels: tuple[str, ...]

    @classmethod
    def from_channel(cls, channel: SimulatedChannel) -> "Transcript":
        """Summarise a finished channel."""
        return cls.from_messages(channel.messages)

    @classmethod
    def from_messages(cls, messages: Iterable[Message]) -> "Transcript":
        """Summarise one run's messages (e.g. a slice of a reused channel)."""
        messages = list(messages)
        rounds = count_rounds(messages)
        return cls(
            total_bits=sum(m.bits for m in messages),
            alice_to_bob_bits=sum(
                m.bits for m in messages if m.direction is Direction.ALICE_TO_BOB
            ),
            bob_to_alice_bits=sum(
                m.bits for m in messages if m.direction is Direction.BOB_TO_ALICE
            ),
            rounds=rounds,
            message_labels=tuple(m.label for m in messages),
        )

    @property
    def total_bytes(self) -> int:
        """Total communication in bytes (rounded up per message already)."""
        return self.total_bits // 8

    @property
    def alice_to_bob_bytes(self) -> int:
        """Bytes shipped Alice -> Bob."""
        return self.alice_to_bob_bits // 8

    @property
    def bob_to_alice_bytes(self) -> int:
        """Bytes shipped Bob -> Alice."""
        return self.bob_to_alice_bits // 8

    def to_dict(self) -> dict:
        """JSON-ready summary (what benchmark emitters serialise)."""
        return {
            "total_bits": self.total_bits,
            "total_bytes": self.total_bytes,
            "alice_to_bob_bits": self.alice_to_bob_bits,
            "alice_to_bob_bytes": self.alice_to_bob_bytes,
            "bob_to_alice_bits": self.bob_to_alice_bits,
            "bob_to_alice_bytes": self.bob_to_alice_bytes,
            "rounds": self.rounds,
            "message_labels": list(self.message_labels),
        }

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.total_bits} bits over {self.rounds} round(s) "
            f"(A->B {self.alice_to_bob_bits}, B->A {self.bob_to_alice_bits}; "
            f"messages: {', '.join(self.message_labels) or 'none'})"
        )
