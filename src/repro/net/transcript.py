"""Human- and machine-readable summaries of a protocol execution."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.channel import Direction, SimulatedChannel


@dataclass(frozen=True)
class Transcript:
    """Immutable summary of one reconciliation run.

    Built from a :class:`~repro.net.channel.SimulatedChannel` after the
    protocol finishes; this is what benchmark harnesses aggregate.
    """

    total_bits: int
    alice_to_bob_bits: int
    bob_to_alice_bits: int
    rounds: int
    message_labels: tuple[str, ...]

    @classmethod
    def from_channel(cls, channel: SimulatedChannel) -> "Transcript":
        """Summarise a finished channel."""
        return cls(
            total_bits=channel.total_bits,
            alice_to_bob_bits=channel.bits_from(Direction.ALICE_TO_BOB),
            bob_to_alice_bits=channel.bits_from(Direction.BOB_TO_ALICE),
            rounds=channel.rounds,
            message_labels=tuple(m.label for m in channel.messages),
        )

    @property
    def total_bytes(self) -> int:
        """Total communication in bytes (rounded up per message already)."""
        return self.total_bits // 8

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.total_bits} bits over {self.rounds} round(s) "
            f"(A->B {self.alice_to_bob_bits}, B->A {self.bob_to_alice_bits}; "
            f"messages: {', '.join(self.message_labels) or 'none'})"
        )
