"""Communication substrate: bit-exact serialisation and a simulated channel.

Every protocol in this library ships its messages as real byte strings built
with :class:`~repro.net.bits.BitWriter` and accounts for them on a
:class:`~repro.net.channel.SimulatedChannel`, so the communication numbers in
the benchmarks are measured, not estimated.
"""

from repro.net.bits import BitReader, BitWriter
from repro.net.channel import Direction, LoopbackChannel, Message, SimulatedChannel
from repro.net.transcript import Transcript

__all__ = [
    "BitReader",
    "BitWriter",
    "Direction",
    "LoopbackChannel",
    "Message",
    "SimulatedChannel",
    "Transcript",
]
