"""Deterministic fault injection for every transport the sessions run on.

Robustness work needs *reproducible* misfortune: a fault that appears in
one CI run and vanishes in the next cannot be debugged, and a fault model
that behaves differently per transport cannot certify the crash-only
property ("every run ends in a correct repair or a typed error — never a
hang, never a silent wrong answer").  This module therefore separates the
*decision* of what goes wrong from the *application* of it:

* :class:`FaultPlan` — a pure, stateless description.  The fate of frame
  ``i`` travelling in direction ``d`` is a deterministic function of
  ``(seed, d, i)`` alone (seeded :class:`random.Random` per slot, string
  seeds hash via SHA-512 so ``PYTHONHASHSEED`` is irrelevant).  The same
  plan object replays bit-identically across runs and transports.
* :class:`FaultInjector` — one execution's counters plus the **fault
  trace**: the ordered record of every non-trivial decision taken, the
  artifact tests compare across transports and CI uploads on failure.
* Three transport adapters, one per rung of the sans-I/O ladder:
  :class:`FaultyChannel` + :func:`pump_faulty` for the synchronous
  simulation, :class:`FaultyLoopbackChannel` for asyncio loopback, and
  :class:`ChaosProxy` for real TCP (a frame-aware man-in-the-middle).

Faults without a byte-level representation are normalised to what a TCP
peer would observe: a *dropped* frame means the reader's deadline would
expire and a *disconnect* means the stream dies, so the in-process
adapters raise :class:`~repro.errors.SessionError` — the same type the
TCP client surfaces — rather than deadlocking a driver that has no clock.

This module is the I/O layer's test harness, deliberately outside the
sans-I/O/protocol lint scopes, and is not re-exported from
:mod:`repro.net` (import it as ``repro.net.faults``): it may import the
serve-layer framing, which in turn imports this package.
"""

from __future__ import annotations

import asyncio
import enum
import random
from collections import deque
from dataclasses import dataclass

from repro.errors import ChannelError, ConfigError, SessionError
from repro.net.channel import Direction, LoopbackChannel, SimulatedChannel

#: Fault kinds a plan can inflict on one frame.
class FaultKind(enum.Enum):
    NONE = "none"
    DROP = "drop"
    TRUNCATE = "truncate"
    CORRUPT = "corrupt"
    DUPLICATE = "duplicate"
    DELAY = "delay"
    DISCONNECT = "disconnect"


@dataclass(frozen=True)
class FaultDecision:
    """What the plan decided for one ``(direction, index)`` slot.

    ``a``/``b`` carry the kind's parameters: bytes kept for TRUNCATE,
    offset/XOR-mask for CORRUPT, milliseconds for DELAY, zero otherwise.
    """

    direction: Direction
    index: int
    kind: FaultKind
    a: int = 0
    b: int = 0

    def record(self) -> tuple:
        """The trace entry: primitive, comparable, JSON-serialisable."""
        return (self.direction.value, self.index, self.kind.value, self.a, self.b)


@dataclass(frozen=True)
class FaultOutcome:
    """A decision applied to a concrete payload.

    ``payloads`` is what the receiver gets: empty for a drop, one entry
    normally, two for a duplicate.  ``disconnect`` means the connection
    dies before this frame is delivered.
    """

    decision: FaultDecision
    payloads: tuple[bytes, ...]
    delay_s: float = 0.0
    disconnect: bool = False


def injected_error(decision: FaultDecision) -> str:
    """The message in-process adapters raise for non-byte faults, phrased
    as what a TCP endpoint would experience."""
    where = f"{decision.direction.value} frame {decision.index}"
    if decision.kind is FaultKind.DISCONNECT:
        return f"injected fault: connection cut at {where}"
    return (
        f"injected fault: {where} dropped — the peer's read deadline "
        "would expire waiting for it"
    )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, transport-independent schedule of misfortune.

    Each probability selects its fault kind for a frame slot; they are
    evaluated on one uniform roll in a fixed order (drop, truncate,
    corrupt, duplicate, delay), so the probabilities must sum to at most
    1.  ``disconnect`` pins a hard connection cut to one exact
    ``(direction, index)`` slot.  ``window`` bounds eligibility to the
    first ``window`` frames per direction — with injector counters that
    persist across reconnects, a bounded window is what lets a retrying
    client eventually get a clean run.  ``only`` restricts probabilistic
    faults to one direction (cross-transport tests fault the
    server-to-client stream so the *client* observes the failure on
    every transport).

    The plan holds no state: :meth:`apply` is a pure function, so one
    plan object (or an equal copy) drives the simulation, the loopback
    run, and the chaos proxy to identical decisions.
    """

    seed: int | str = 0
    drop: float = 0.0
    truncate: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_ms: int = 5
    disconnect: tuple[Direction | str, int] | None = None
    window: int | None = None
    only: Direction | str | None = None

    def __post_init__(self) -> None:
        rates = {
            "drop": self.drop, "truncate": self.truncate,
            "corrupt": self.corrupt, "duplicate": self.duplicate,
            "delay": self.delay,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} probability {rate} not in [0, 1]")
        if sum(rates.values()) > 1.0 + 1e-9:
            raise ConfigError(
                f"fault probabilities sum to {sum(rates.values())}, above 1"
            )
        if self.delay_ms < 0:
            raise ConfigError(f"delay_ms must be >= 0, got {self.delay_ms}")
        if self.window is not None and self.window < 0:
            raise ConfigError(f"window must be >= 0, got {self.window}")
        if self.only is not None and not isinstance(self.only, Direction):
            try:
                Direction(self.only)
            except ValueError as exc:
                raise ConfigError(
                    f"unknown fault direction {self.only!r}"
                ) from exc
        if self.disconnect is not None:
            direction, index = self.disconnect
            if not isinstance(direction, Direction):
                try:
                    Direction(direction)
                except ValueError as exc:
                    raise ConfigError(
                        f"unknown disconnect direction {direction!r}"
                    ) from exc
            if index < 0:
                raise ConfigError(f"disconnect index must be >= 0, got {index}")

    def apply(
        self, direction: Direction | str, index: int, payload: bytes
    ) -> FaultOutcome:
        """Decide and apply this slot's fate to one payload (pure)."""
        if not isinstance(direction, Direction):
            direction = Direction(direction)
        if self.disconnect is not None:
            cut_direction, cut_index = self.disconnect
            if not isinstance(cut_direction, Direction):
                cut_direction = Direction(cut_direction)
            if direction is cut_direction and index == cut_index:
                decision = FaultDecision(direction, index, FaultKind.DISCONNECT)
                return FaultOutcome(decision, (), disconnect=True)
        kind = FaultKind.NONE
        rng = random.Random(f"{self.seed}/{direction.value}/{index}")
        eligible = self.window is None or index < self.window
        if eligible and self.only is not None:
            only = (
                self.only if isinstance(self.only, Direction)
                else Direction(self.only)
            )
            eligible = direction is only
        if eligible:
            roll = rng.random()
            threshold = 0.0
            for candidate, rate in (
                (FaultKind.DROP, self.drop),
                (FaultKind.TRUNCATE, self.truncate),
                (FaultKind.CORRUPT, self.corrupt),
                (FaultKind.DUPLICATE, self.duplicate),
                (FaultKind.DELAY, self.delay),
            ):
                threshold += rate
                if roll < threshold:
                    kind = candidate
                    break
        if kind in (FaultKind.TRUNCATE, FaultKind.CORRUPT) and not payload:
            kind = FaultKind.NONE  # nothing to mangle in an empty payload
        if kind is FaultKind.DROP:
            decision = FaultDecision(direction, index, kind)
            return FaultOutcome(decision, ())
        if kind is FaultKind.TRUNCATE:
            keep = rng.randrange(len(payload))
            decision = FaultDecision(direction, index, kind, a=keep)
            return FaultOutcome(decision, (payload[:keep],))
        if kind is FaultKind.CORRUPT:
            offset = rng.randrange(len(payload))
            mask = rng.randrange(1, 256)
            mangled = bytearray(payload)
            mangled[offset] ^= mask
            decision = FaultDecision(direction, index, kind, a=offset, b=mask)
            return FaultOutcome(decision, (bytes(mangled),))
        if kind is FaultKind.DUPLICATE:
            decision = FaultDecision(direction, index, kind)
            return FaultOutcome(decision, (payload, payload))
        if kind is FaultKind.DELAY:
            decision = FaultDecision(direction, index, kind, a=self.delay_ms)
            return FaultOutcome(
                decision, (payload,), delay_s=self.delay_ms / 1000.0
            )
        return FaultOutcome(FaultDecision(direction, index, kind), (payload,))


class FaultInjector:
    """One execution of a plan: per-direction frame counters + the trace.

    Counters persist for the injector's lifetime — a :class:`ChaosProxy`
    shares one injector across reconnects, so frame indices (and
    therefore fault decisions) keep advancing over a retry sequence
    exactly as they do over one long simulated run.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.trace: list[tuple] = []
        self._counts: dict[Direction, int] = {d: 0 for d in Direction}

    def frames(self, direction: Direction) -> int:
        """How many frames have passed through in ``direction``."""
        return self._counts[direction]

    def apply(self, direction: Direction, payload: bytes) -> FaultOutcome:
        """Apply the plan to the next frame in ``direction``."""
        index = self._counts[direction]
        self._counts[direction] = index + 1
        outcome = self.plan.apply(direction, index, payload)
        if outcome.decision.kind is not FaultKind.NONE:
            self.trace.append(outcome.decision.record())
        return outcome


def _outbound(output) -> tuple:
    """Messages carried by a session's start/feed output (duck-typed so
    this module never imports the session package at import time)."""
    messages = getattr(output, "messages", None)
    return tuple(output) if messages is None else tuple(messages)


class FaultyChannel(SimulatedChannel):
    """Synchronous recording channel that filters sends through a plan.

    Records what the receiver actually sees (post-fault bytes).  Drops
    and disconnects raise :class:`~repro.errors.SessionError` — the
    synchronous simulation has no clock, so "the reader would time out"
    collapses to an immediate typed error of the same type a TCP client
    reports.  Drive it with :func:`pump_faulty`, which understands
    multi-delivery (duplicates).
    """

    def __init__(self, plan: FaultPlan):
        super().__init__()
        self.injector = FaultInjector(plan)

    @property
    def trace(self) -> tuple:
        return tuple(self.injector.trace)

    def deliver(
        self, direction: Direction, payload: bytes, label: str = ""
    ) -> tuple[bytes, ...]:
        """Pass one payload through the plan; returns delivered copies."""
        outcome = self.injector.apply(direction, payload)
        if outcome.disconnect or not outcome.payloads:
            raise SessionError(injected_error(outcome.decision))
        return tuple(
            self.send(direction, delivered, label)
            for delivered in outcome.payloads
        )


#: Direction each role transmits in (local copy: the session package must
#: stay importable without this module and vice versa).
_OUTBOUND_DIRECTION = {
    "alice": Direction.ALICE_TO_BOB,
    "bob": Direction.BOB_TO_ALICE,
}


def pump_faulty(alice, bob, channel: FaultyChannel) -> tuple[object, object]:
    """Drive both endpoints over a fault-injecting channel to completion.

    The fault-aware twin of :func:`repro.session.driver.pump`: a dropped
    or cut frame raises :class:`~repro.errors.SessionError`, a duplicated
    frame is fed to the receiver twice (which the session contract turns
    into a typed error), and mangled bytes reach ``feed`` exactly as a
    TCP receiver would see them.  Returns ``(alice.result, bob.result)``.
    """
    sessions = {"alice": alice, "bob": bob}
    in_flight: deque = deque()
    for role in ("alice", "bob"):
        for message in _outbound(sessions[role].start()):
            in_flight.append((role, message))
    while in_flight:
        sender, message = in_flight.popleft()
        receiver = "bob" if sender == "alice" else "alice"
        delivered = channel.deliver(
            _OUTBOUND_DIRECTION[sender], message.payload, message.label
        )
        for payload in delivered:
            for reply in _outbound(sessions[receiver].feed(payload)):
                in_flight.append((receiver, reply))
    if not (alice.done and bob.done):
        stuck = [role for role, s in sessions.items() if not s.done]
        raise SessionError(
            f"protocol stalled under faults: no messages in flight but "
            f"{', '.join(stuck)} still expect input"
        )
    return alice.result, bob.result


#: Queue marker for an already-faulted duplicate copy: it must reach the
#: receiver without being counted (or faulted) a second time, keeping
#: frame indices aligned with the chaos proxy, which also applies the
#: plan once per originating frame.
_REPLAY = object()


class FaultyLoopbackChannel(LoopbackChannel):
    """Asyncio loopback channel that filters *receives* through a plan.

    Faults are applied on the receiving side so a fault in either
    direction surfaces in the task that would observe it over TCP.  A
    drop or disconnect poisons the whole channel: every pending and
    future receive raises :class:`~repro.errors.SessionError` with the
    injected-fault message, so neither endpoint task can hang.  Delays
    are real ``asyncio.sleep`` calls here.
    """

    def __init__(self, plan: FaultPlan):
        super().__init__()
        self.injector = FaultInjector(plan)
        self._failure: str | None = None

    @property
    def trace(self) -> tuple:
        return tuple(self.injector.trace)

    async def receive(self, direction: Direction) -> bytes:
        if self._failure is not None:
            raise SessionError(self._failure)
        try:
            payload = await super().receive(direction)
        except ChannelError:
            if self._failure is not None:
                raise SessionError(self._failure) from None
            raise
        if isinstance(payload, tuple) and payload[0] is _REPLAY:
            return payload[1]
        outcome = self.injector.apply(direction, payload)
        if outcome.disconnect or not outcome.payloads:
            self._failure = injected_error(outcome.decision)
            self.close()  # wake the peer task; it raises the same error
            raise SessionError(self._failure)
        if outcome.delay_s:
            await asyncio.sleep(outcome.delay_s)
        for extra in outcome.payloads[1:]:
            self._queues[direction].put_nowait((_REPLAY, extra))
        return outcome.payloads[0]


class _ConnectionCut(Exception):
    """Internal signal: the plan ordered a mid-stream disconnect."""


class ChaosProxy:
    """A frame-aware TCP man-in-the-middle applying a :class:`FaultPlan`.

    Sits between a real client and a real
    :class:`~repro.serve.service.ReconciliationServer`, reassembles the
    length-prefixed frames in both directions, and gives each one to the
    shared :class:`FaultInjector`.  The first ``handshake_frames`` frames
    of each direction of *every* connection (hello / welcome) pass
    untouched and uncounted, so fault indices line up with the in-process
    transports, which have no handshake.  Injector counters span
    reconnects: a retrying client advances through the plan instead of
    replaying frame 0's fate forever.

    Usable as an async context manager; ``port=0`` binds ephemerally::

        async with ChaosProxy(host, port, plan) as proxy:
            await sync(*proxy.address, config, points, ...)
    """

    CLIENT_TO_SERVER = Direction.BOB_TO_ALICE
    SERVER_TO_CLIENT = Direction.ALICE_TO_BOB

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: FaultPlan,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        handshake_frames: int = 1,
    ):
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.injector = FaultInjector(plan)
        self.host = host
        self.port = port
        self.handshake_frames = handshake_frames
        self.connections = 0
        self._server: asyncio.base_events.Server | None = None
        self._handlers: set[asyncio.Task] = set()

    @property
    def trace(self) -> tuple:
        return tuple(self.injector.trace)

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    async def start(self) -> tuple[str, int]:
        if self._server is not None:
            raise SessionError("chaos proxy already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.address

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)

    async def __aenter__(self) -> "ChaosProxy":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _handle(
        self, client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        self.connections += 1
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            client_writer.close()
            return
        pumps = [
            asyncio.create_task(self._pump(
                client_reader, upstream_writer, self.CLIENT_TO_SERVER
            )),
            asyncio.create_task(self._pump(
                upstream_reader, client_writer, self.SERVER_TO_CLIENT
            )),
        ]
        try:
            await asyncio.gather(*pumps)
        except (_ConnectionCut, ConnectionError, OSError, asyncio.CancelledError):
            for pump in pumps:
                pump.cancel()
            await asyncio.gather(*pumps, return_exceptions=True)
        finally:
            for writer in (client_writer, upstream_writer):
                transport = writer.transport
                if transport is not None:
                    transport.abort()

    async def _pump(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
        direction: Direction,
    ) -> None:
        # Imported here, not at module top: repro.serve imports repro.net,
        # so the reverse edge must not run during package initialisation.
        from repro.serve.frames import FrameDecoder, write_frame

        decoder = FrameDecoder()
        skip = self.handshake_frames
        while True:
            chunk = await reader.read(65536)
            if not chunk:
                break
            decoder.feed(chunk)
            while (frame := decoder.next_frame()) is not None:
                if skip > 0:
                    skip -= 1
                    await write_frame(writer, frame)
                    continue
                outcome = self.injector.apply(direction, frame)
                if outcome.disconnect:
                    # repro-lint: waive[RPL003] reason=internal control-flow
                    # signal between _pump and _handle; never escapes _handle
                    raise _ConnectionCut()
                if outcome.delay_s:
                    await asyncio.sleep(outcome.delay_s)
                for payload in outcome.payloads:
                    await write_frame(writer, payload)
        # Clean EOF: half-close downstream so the peer sees it too, and
        # keep the other direction flowing until its own EOF.
        try:
            if writer.can_write_eof():
                writer.write_eof()
        except (OSError, RuntimeError):
            pass
