"""The shared wire codec for IBLT cell payloads — vectorized, bit-identical.

Every sketch payload in this library serialises IBLT cells in one of two
layouts:

**v1 varint layout** (one-round sketches, the adaptive exchange, strata
estimators — via :meth:`repro.iblt.table.IBLT.write_to`)::

    per cell:  svarint(count) | uint(key_sum, key_bits) | uint(check_sum, checksum_bits)

**v2 fixed-width layout** (the sharded frame, :mod:`repro.scale.wire`)::

    per cell:  uint(zigzag(count), count_width) | uint(key_sum, key_bits) | uint(check_sum, checksum_bits)

Historically v1 was produced and parsed field-at-a-time through Python
:class:`~repro.net.bits.BitWriter` / :class:`~repro.net.bits.BitReader`
calls — roughly three Python-level calls per cell, the dominant remaining
CPU cost of a sync in the serve layer — while v2 kept a private numpy
copy inside ``scale/wire.py``.  This module is now the single home of
both: scalar reference functions (the bit-exact spec, always available)
and numpy fast paths that pack / unpack whole tables columnarly via
``np.packbits`` / ``np.unpackbits``.

The fast paths are **bit-identical** to the scalar reference — golden
transcripts do not move — and fall back to the scalar functions whenever
they cannot guarantee that (no numpy, ``FORCE_SCALAR`` set, fields wider
than 64 bits, values that do not fit native dtypes, adversarial varint
chains).  Fallbacks re-parse from the original stream position, so the
error type, message, and consumed-bit count on malformed payloads are
byte-for-byte the reference's.  ``tests/test_wire_codec.py`` enforces
both properties differentially.

Varint vectorization
--------------------
A zigzag-mapped count spends one 8-bit LEB128 group per 7 payload bits,
so a cell's width is only *per-table* constant when every count fits one
group (|count| <= 63 — every subtracted table, and any sketch whose
per-cell load stays small).  That common case is a pure fixed-stride
bit-matrix.  Dense tables with multi-group counts still vectorize: the
writer computes each count's group length arithmetically and scatters
fields at cumulative bit offsets; the reader discovers group lengths
with a cheap continuation-bit walk (a couple of integer ops per cell —
far less than the three field parses it replaces) and then gathers all
fields vectorized.
"""

from __future__ import annotations

try:  # soft dependency: the scalar reference paths run without numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

from repro.errors import SerializationError
from repro.net.bits import BitReader, BitWriter, zigzag_decode, zigzag_encode

#: Escape hatch forcing the scalar reference paths everywhere (differential
#: tests, the ``--wire-codec scalar`` CLI flag, benchmark baselines).
FORCE_SCALAR = False

#: The scalar reader rejects varints longer than 1024 bits (147 groups);
#: chains at or past the limit fall back so the reference error fires.
_VARINT_MAX_GROUPS = 146

#: Valid zigzag counts fit uint64 in at most 10 groups; longer (or
#: 10-group values that overflow uint64) chains are parsed by the scalar
#: reference, which handles arbitrary-precision counts.
_VARINT_U64_GROUPS = 9


def _vector_ready(key_bits: int, check_bits: int) -> bool:
    return (
        _np is not None
        and not FORCE_SCALAR
        and 0 < key_bits <= 64
        and 0 < check_bits <= 64
    )


def _columns(counts, key_sums, check_sums):
    """The three cell columns as (int64, uint64, uint64) arrays.

    Returns ``None`` when the values do not fit the native widths (huge
    Python ints, foreign dtypes) — the caller then takes the scalar path,
    which supports arbitrary ints and raises the reference errors.
    """
    try:
        if isinstance(counts, _np.ndarray) and counts.dtype.kind not in "iu":
            return None
        if isinstance(key_sums, _np.ndarray) and key_sums.dtype.kind not in "iu":
            return None
        if isinstance(check_sums, _np.ndarray) and check_sums.dtype.kind not in "iu":
            return None
        c = _np.asarray(counts, dtype=_np.int64)
        k = _np.asarray(key_sums, dtype=_np.uint64)
        s = _np.asarray(check_sums, dtype=_np.uint64)
    except (OverflowError, TypeError, ValueError):
        return None
    return c, k, s


def _fields_fit(keys, checks, key_bits: int, check_bits: int) -> bool:
    """True when every key/checksum fits its declared width (the scalar
    writer raises on the first that does not; the fallback reproduces it)."""
    if keys.size == 0:
        return True
    if key_bits < 64 and bool((keys >> _np.uint64(key_bits)).any()):
        return False
    if check_bits < 64 and bool((checks >> _np.uint64(check_bits)).any()):
        return False
    return True


def _writable_columns(counts, key_sums, check_sums, key_bits, check_bits):
    """The columns as native arrays when the vector writers may encode them.

    ``None`` demands the scalar fallback: values outside native widths,
    fields wider than declared (the reference writer raises there), or
    counts so large their zigzag would overflow int64 arithmetic.  The
    one shared gate of both cell layouts' write paths — v1 varint and v2
    fixed-width must never drift apart on when they vectorize.
    """
    cols = _columns(counts, key_sums, check_sums)
    if (
        cols is None
        or not _fields_fit(cols[1], cols[2], key_bits, check_bits)
        or (cols[0].size and bool((_np.abs(cols[0]) >= 2**62).any()))
    ):
        return None
    return cols


def _field_bits(values, width: int) -> "_np.ndarray":
    """Each value's low ``width`` bits as a ``(n, width)`` 0/1 matrix.

    One C pass: big-endian byte view + ``np.unpackbits`` — no per-bit
    Python arithmetic, no 8-byte-per-bit intermediates.
    """
    raw = values.astype(">u8").view(_np.uint8).reshape(-1, 8)
    return _np.unpackbits(raw, axis=1)[:, 64 - width:]


def _bits_to_uint64(bits) -> "_np.ndarray":
    """Inverse of :func:`_field_bits`: a ``(n, width)`` 0/1 matrix as uint64."""
    n, width = bits.shape
    padded = _np.zeros((n, 64), dtype=_np.uint8)
    padded[:, 64 - width:] = bits
    return (
        _np.packbits(padded, axis=1).view(">u8").ravel().astype(_np.uint64)
    )


def _pack_fixed_matrix(fields) -> "_np.ndarray":
    """Fixed-stride cells as one flat 0/1 bit array (row = cell).

    ``fields`` is a sequence of ``(values, width)`` columns, uint64-castable,
    already validated to fit their widths.
    """
    columns = [
        _field_bits(values.astype(_np.uint64), width)
        for values, width in fields
    ]
    return _np.concatenate(columns, axis=1).reshape(-1)


def _matrix_field(matrix, offset: int, width: int) -> "_np.ndarray":
    """One fixed-width column of a ``(cells, stride)`` bit matrix, as uint64."""
    return _bits_to_uint64(matrix[:, offset:offset + width])


def _scatter_field(bits, starts, values, width: int) -> None:
    """Write a fixed-width field of every cell at per-cell bit offsets."""
    idx = starts[:, None] + _np.arange(width, dtype=_np.int64)[None, :]
    bits[idx] = _field_bits(values, width)


def _gather_field(bits, starts, width: int) -> "_np.ndarray":
    """Read a fixed-width field of every cell at per-cell bit offsets."""
    idx = starts[:, None] + _np.arange(width, dtype=_np.int64)[None, :]
    return _bits_to_uint64(bits[idx])


def _zigzag_vec(counts) -> "_np.ndarray":
    """Vectorized :func:`~repro.net.bits.zigzag_encode` over int64 counts."""
    return _np.where(counts >= 0, 2 * counts, -2 * counts - 1).astype(_np.uint64)


def _unzigzag_vec(zig) -> "_np.ndarray":
    """Vectorized :func:`~repro.net.bits.zigzag_decode` (uint64 -> int64)."""
    half = (zig >> _np.uint64(1)).astype(_np.int64)
    return _np.where(zig & _np.uint64(1) == 0, half, -half - 1)


# --------------------------------------------------------------- v1 varint


def write_cells_scalar(
    writer: BitWriter, counts, key_sums, check_sums, key_bits: int, check_bits: int
) -> None:
    """The field-at-a-time reference writer (the v1 wire spec)."""
    for count, key, check in zip(counts, key_sums, check_sums):
        writer.write_svarint(int(count))
        writer.write_uint(int(key), key_bits)
        writer.write_uint(int(check), check_bits)


def write_cells(
    writer: BitWriter, counts, key_sums, check_sums, key_bits: int, check_bits: int
) -> None:
    """Serialise parallel cell columns in the v1 varint layout.

    Bit-identical to :func:`write_cells_scalar`; vectorized whenever numpy
    is available and the columns fit native widths.
    """
    if not _vector_ready(key_bits, check_bits):
        write_cells_scalar(
            writer, counts, key_sums, check_sums, key_bits, check_bits
        )
        return
    cols = _writable_columns(counts, key_sums, check_sums, key_bits, check_bits)
    if cols is None:
        write_cells_scalar(
            writer, counts, key_sums, check_sums, key_bits, check_bits
        )
        return
    c, k, s = cols
    if c.size == 0:
        return
    zig = _zigzag_vec(c)
    groups = _np.ones(c.shape, dtype=_np.int64)
    for g in range(1, 10):
        groups += zig >= _np.uint64(1 << (7 * g))
    if int(groups.max()) == 1:
        # Every count is a single LEB128 group (|count| <= 63): the whole
        # table is one fixed-stride bit matrix.
        writer.write_bits(
            _pack_fixed_matrix(((zig, 8), (k, key_bits), (s, check_bits)))
        )
        return
    # Mixed group lengths: scatter each field at cumulative bit offsets.
    fixed = key_bits + check_bits
    record = 8 * groups + fixed
    offs = _np.zeros(c.size, dtype=_np.int64)
    _np.cumsum(record[:-1], out=offs[1:])
    bits = _np.zeros(int(offs[-1] + record[-1]), dtype=_np.uint8)
    for g in range(int(groups.max())):
        sel = _np.flatnonzero(groups > g)
        group = (zig[sel] >> _np.uint64(7 * g)) & _np.uint64(0x7F)
        group |= (groups[sel] - 1 > g).astype(_np.uint64) << _np.uint64(7)
        _scatter_field(bits, offs[sel] + 8 * g, group, 8)
    _scatter_field(bits, offs + 8 * groups, k, key_bits)
    _scatter_field(bits, offs + 8 * groups + key_bits, s, check_bits)
    writer.write_bits(bits)


def read_cells_scalar(
    reader: BitReader, cells: int, key_bits: int, check_bits: int
):
    """The field-at-a-time reference parser (the v1 wire spec)."""
    counts: list[int] = []
    key_sums: list[int] = []
    check_sums: list[int] = []
    for _ in range(cells):
        counts.append(reader.read_svarint())
        key_sums.append(reader.read_uint(key_bits))
        check_sums.append(reader.read_uint(check_bits))
    return counts, key_sums, check_sums


def _scan_varint_groups(reader: BitReader, cells: int, fixed_bits: int):
    """Per-cell LEB128 group counts, by walking continuation bits.

    A couple of integer operations per cell — the only sequential part of
    the vectorized parse.  Returns ``(groups, span_bits)`` or ``None``
    when the stream is truncated, a chain reaches the reference reader's
    length limit, or a count would overflow uint64: the caller then
    re-parses with the scalar reference from the same position, which
    raises (or succeeds) exactly as it always did.
    """
    # Sibling-module access: the scan reads raw buffer bits without the
    # per-call overhead a public bit-at-a-time API would add.
    view = reader._view
    total = reader._total_bits
    start = reader._pos
    pos = start
    groups: list[int] = []
    for _ in range(cells):
        count = 1
        while True:
            if pos + 8 > total:
                return None
            if not (view[pos >> 3] >> (7 - (pos & 7))) & 1:
                break
            count += 1
            if count > _VARINT_MAX_GROUPS:
                return None
            pos += 8
        if count > _VARINT_U64_GROUPS:
            return None
        pos += 8 + fixed_bits
        if pos > total:
            return None
        groups.append(count)
    return groups, pos - start


def read_cells(reader: BitReader, cells: int, key_bits: int, check_bits: int):
    """Parse ``cells`` v1-layout cells into three parallel columns.

    Returns numpy arrays (int64 counts, uint64 keys/checksums) on the fast
    path and plain lists of ints from the scalar reference otherwise; both
    consume identical bits and feed ``Backend.load_rows`` directly.
    """
    if not _vector_ready(key_bits, check_bits) or cells <= 0:
        return read_cells_scalar(reader, cells, key_bits, check_bits)
    stride = 8 + key_bits + check_bits
    if reader.bits_remaining < cells * stride:
        # Truncated (or multi-group varints could not fit either): the
        # reference parser raises the canonical overrun error mid-field.
        return read_cells_scalar(reader, cells, key_bits, check_bits)
    head = reader.peek_bits(cells * stride).reshape(cells, stride)
    if not head[:, 0].any():
        # Single-group counts throughout: one fixed-stride matrix.
        zig = _matrix_field(head, 0, 8)
        keys = _matrix_field(head, 8, key_bits)
        checks = _matrix_field(head, 8 + key_bits, check_bits)
        reader.skip_bits(cells * stride)
        return _unzigzag_vec(zig), keys, checks
    scan = _scan_varint_groups(reader, cells, key_bits + check_bits)
    if scan is None:
        return read_cells_scalar(reader, cells, key_bits, check_bits)
    group_list, span = scan
    groups = _np.asarray(group_list, dtype=_np.int64)
    bits = reader.peek_bits(span)
    record = 8 * groups + key_bits + check_bits
    offs = _np.zeros(cells, dtype=_np.int64)
    _np.cumsum(record[:-1], out=offs[1:])
    zig = _np.zeros(cells, dtype=_np.uint64)
    for g in range(int(groups.max())):
        sel = _np.flatnonzero(groups > g)
        byte = _gather_field(bits, offs[sel] + 8 * g, 8)
        zig[sel] |= (byte & _np.uint64(0x7F)) << _np.uint64(7 * g)
    keys = _gather_field(bits, offs + 8 * groups, key_bits)
    checks = _gather_field(bits, offs + 8 * groups + key_bits, check_bits)
    reader.skip_bits(span)
    return _unzigzag_vec(zig), keys, checks


# ---------------------------------------------------------- v2 fixed-width


def encode_cells_fixed_scalar(
    counts, key_sums, check_sums, count_width: int, key_bits: int, check_bits: int
) -> bytes:
    """Reference encoder for one fixed-width cell blob (the v2 wire spec)."""
    writer = BitWriter()
    for count, key, check in zip(counts, key_sums, check_sums):
        writer.write_uint(zigzag_encode(int(count)), count_width)
        writer.write_uint(int(key), key_bits)
        writer.write_uint(int(check), check_bits)
    return writer.getvalue()


def encode_cells_fixed(
    counts, key_sums, check_sums, count_width: int, key_bits: int, check_bits: int
) -> bytes:
    """One table's cells as a standalone fixed-width blob (v2 layout)."""
    if not _vector_ready(key_bits, check_bits) or count_width > 63:
        return encode_cells_fixed_scalar(
            counts, key_sums, check_sums, count_width, key_bits, check_bits
        )
    cols = _writable_columns(counts, key_sums, check_sums, key_bits, check_bits)
    if cols is None:
        return encode_cells_fixed_scalar(
            counts, key_sums, check_sums, count_width, key_bits, check_bits
        )
    c, k, s = cols
    if c.size == 0:
        return b""
    zig = _zigzag_vec(c)
    if int(zig.max()).bit_length() > count_width:
        # Mirror the reference writer's does-not-fit error.
        raise SerializationError(
            f"cell count {int(c[zig.argmax()])} does not fit the "
            f"{count_width}-bit count field"
        )
    bits = _pack_fixed_matrix(
        ((zig, count_width), (k, key_bits), (s, check_bits))
    )
    return _np.packbits(bits).tobytes()


def decode_cells_fixed_scalar(
    blob: bytes, cells: int, count_width: int, key_bits: int, check_bits: int
):
    """Reference parser for one fixed-width cell blob."""
    reader = BitReader(blob)
    counts: list[int] = []
    key_sums: list[int] = []
    check_sums: list[int] = []
    for _ in range(cells):
        counts.append(zigzag_decode(reader.read_uint(count_width)))
        key_sums.append(reader.read_uint(key_bits))
        check_sums.append(reader.read_uint(check_bits))
    return counts, key_sums, check_sums


def decode_cells_fixed(
    blob: bytes, cells: int, count_width: int, key_bits: int, check_bits: int
):
    """Parse one fixed-width cell blob into three parallel columns.

    The caller (:mod:`repro.scale.wire`) validates the blob's byte length
    against ``cells`` first; this only splits fields.
    """
    if not _vector_ready(key_bits, check_bits) or count_width > 63:
        return decode_cells_fixed_scalar(
            blob, cells, count_width, key_bits, check_bits
        )
    stride = count_width + key_bits + check_bits
    matrix = _np.unpackbits(
        _np.frombuffer(blob, dtype=_np.uint8), count=cells * stride
    ).reshape(cells, stride)
    zig = _matrix_field(matrix, 0, count_width)
    keys = _matrix_field(matrix, count_width, key_bits)
    checks = _matrix_field(matrix, count_width + key_bits, check_bits)
    return _unzigzag_vec(zig), keys, checks
