"""Bit-granular serialisation primitives.

The reconciliation sketches in this library are sized in *bits* — the paper's
guarantees are stated in bits of communication — so messages are packed with
explicit field widths rather than relying on Python object sizes.

:class:`BitWriter` accumulates fields most-significant-bit first into a byte
string; :class:`BitReader` replays them.  Both support:

* fixed-width unsigned integers (``write_uint`` / ``read_uint``),
* LEB128-style varints (``write_varint`` / ``read_varint``),
* zigzag-mapped signed integers (``write_svarint`` / ``read_svarint``),
* raw byte strings with a varint length prefix (``write_bytes``).

Example
-------
>>> w = BitWriter()
>>> w.write_uint(5, 3)
>>> w.write_varint(300)
>>> r = BitReader(w.getvalue())
>>> r.read_uint(3)
5
>>> r.read_varint()
300
"""

from __future__ import annotations

from repro.errors import SerializationError


def uint_width(value: int) -> int:
    """Return the minimum number of bits needed to store ``value`` (≥ 1).

    >>> uint_width(0), uint_width(1), uint_width(255), uint_width(256)
    (1, 1, 8, 9)
    """
    if value < 0:
        raise SerializationError(f"uint_width of negative value {value}")
    return max(1, value.bit_length())


def zigzag_encode(value: int) -> int:
    """Map a signed integer onto an unsigned one (0,-1,1,-2,... -> 0,1,2,3...)."""
    return value * 2 if value >= 0 else -value * 2 - 1


_zigzag_big = zigzag_encode


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    if value < 0:
        raise SerializationError(f"zigzag_decode of negative value {value}")
    return value // 2 if value % 2 == 0 else -(value + 1) // 2


class BitWriter:
    """Accumulate bit fields MSB-first into a byte string."""

    def __init__(self) -> None:
        self._chunks: list[int] = []
        self._bit_len = 0

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._bit_len

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._bit_len

    @property
    def byte_length(self) -> int:
        """Number of bytes the current content rounds up to."""
        return (self._bit_len + 7) // 8

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise SerializationError(f"bit must be 0 or 1, got {bit!r}")
        self._chunks.append((bit, 1))
        self._bit_len += 1

    def write_uint(self, value: int, width: int) -> None:
        """Append ``value`` as an unsigned integer of exactly ``width`` bits."""
        if width <= 0:
            raise SerializationError(f"width must be positive, got {width}")
        if value < 0:
            raise SerializationError(f"cannot write negative value {value} as uint")
        if value.bit_length() > width:
            raise SerializationError(
                f"value {value} does not fit in {width} bits"
            )
        self._chunks.append((value, width))
        self._bit_len += width

    def write_varint(self, value: int) -> None:
        """Append an unsigned integer using 8-bit LEB128 groups.

        Each group spends 8 bits: a continuation bit plus 7 payload bits.
        Values below 128 therefore cost exactly one byte.
        """
        if value < 0:
            raise SerializationError(f"cannot write negative varint {value}")
        while True:
            group = value & 0x7F
            value >>= 7
            cont = 1 if value else 0
            self._chunks.append(((cont << 7) | group, 8))
            self._bit_len += 8
            if not cont:
                return

    def write_svarint(self, value: int) -> None:
        """Append a signed integer with zigzag + varint encoding."""
        self.write_varint(_zigzag_big(value))

    def write_bytes(self, data: bytes) -> None:
        """Append a length-prefixed byte string."""
        self.write_varint(len(data))
        for byte in data:
            self._chunks.append((byte, 8))
        self._bit_len += 8 * len(data)

    def getvalue(self) -> bytes:
        """Return the accumulated bits, zero-padded to a whole byte string."""
        acc = 0
        for value, width in self._chunks:
            acc = (acc << width) | value
        pad = (8 - self._bit_len % 8) % 8
        acc <<= pad
        return acc.to_bytes((self._bit_len + pad) // 8, "big")


class BitReader:
    """Replay bit fields from a byte string produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._value = int.from_bytes(data, "big")
        self._total_bits = 8 * len(data)
        self._pos = 0

    @property
    def bits_consumed(self) -> int:
        """Number of bits read so far."""
        return self._pos

    @property
    def bits_remaining(self) -> int:
        """Number of bits not yet read (including any tail padding)."""
        return self._total_bits - self._pos

    def _take(self, width: int) -> int:
        if width <= 0:
            raise SerializationError(f"width must be positive, got {width}")
        if self._pos + width > self._total_bits:
            raise SerializationError(
                f"read of {width} bits overruns message "
                f"({self.bits_remaining} bits remain)"
            )
        shift = self._total_bits - self._pos - width
        mask = (1 << width) - 1
        self._pos += width
        return (self._value >> shift) & mask

    def read_bit(self) -> int:
        """Read a single bit."""
        return self._take(1)

    def read_uint(self, width: int) -> int:
        """Read an unsigned integer of exactly ``width`` bits."""
        return self._take(width)

    def read_varint(self) -> int:
        """Read an unsigned LEB128 varint."""
        value = 0
        shift = 0
        while True:
            group = self._take(8)
            value |= (group & 0x7F) << shift
            if not group & 0x80:
                return value
            shift += 7
            if shift > 1024:
                raise SerializationError("varint exceeds 1024 bits; corrupt stream")

    def read_svarint(self) -> int:
        """Read a zigzag-encoded signed varint."""
        return zigzag_decode(self.read_varint())

    def read_bytes(self) -> bytes:
        """Read a length-prefixed byte string."""
        length = self.read_varint()
        if 8 * length > self.bits_remaining:
            raise SerializationError(
                f"byte string of length {length} overruns message"
            )
        return bytes(self._take(8) for _ in range(length))

    def expect_end(self, *, allow_padding: bool = True) -> None:
        """Assert the stream is exhausted (up to sub-byte zero padding)."""
        if not allow_padding:
            if self.bits_remaining:
                raise SerializationError(
                    f"{self.bits_remaining} unread bits at end of message"
                )
            return
        if self.bits_remaining >= 8:
            raise SerializationError(
                f"{self.bits_remaining} unread bits at end of message"
            )
        while self.bits_remaining:
            if self.read_bit():
                raise SerializationError("nonzero padding at end of message")
