"""Bit-granular serialisation primitives.

The reconciliation sketches in this library are sized in *bits* — the paper's
guarantees are stated in bits of communication — so messages are packed with
explicit field widths rather than relying on Python object sizes.

:class:`BitWriter` accumulates fields most-significant-bit first into a byte
string; :class:`BitReader` replays them.  Both support:

* fixed-width unsigned integers (``write_uint`` / ``read_uint``),
* LEB128-style varints (``write_varint`` / ``read_varint``),
* zigzag-mapped signed integers (``write_svarint`` / ``read_svarint``),
* raw byte strings with a varint length prefix (``write_bytes``).

Example
-------
>>> w = BitWriter()
>>> w.write_uint(5, 3)
>>> w.write_varint(300)
>>> r = BitReader(w.getvalue())
>>> r.read_uint(3)
5
>>> r.read_varint()
300
"""

from __future__ import annotations

try:  # soft dependency: the bulk array paths vectorize, the rest never needs it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None  # type: ignore[assignment]

from repro.errors import SerializationError


def uint_width(value: int) -> int:
    """Return the minimum number of bits needed to store ``value`` (≥ 1).

    >>> uint_width(0), uint_width(1), uint_width(255), uint_width(256)
    (1, 1, 8, 9)
    """
    if value < 0:
        raise SerializationError(f"uint_width of negative value {value}")
    return max(1, value.bit_length())


def zigzag_encode(value: int) -> int:
    """Map a signed integer onto an unsigned one (0,-1,1,-2,... -> 0,1,2,3...)."""
    return value * 2 if value >= 0 else -value * 2 - 1


_zigzag_big = zigzag_encode


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    if value < 0:
        raise SerializationError(f"zigzag_decode of negative value {value}")
    return value // 2 if value % 2 == 0 else -(value + 1) // 2


class BitWriter:
    """Accumulate bit fields MSB-first into a byte string.

    Whole bytes are flushed into a ``bytearray`` as soon as they complete, so
    the cost of writing a message is linear in its size; only the trailing
    sub-byte remainder (at most 7 bits) is kept as an integer accumulator.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._acc = 0  # pending bits, MSB-first; always < 2**_acc_bits
        self._acc_bits = 0  # number of pending bits (0..7 between calls)
        self._bit_len = 0

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._bit_len

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._bit_len

    @property
    def byte_length(self) -> int:
        """Number of bytes the current content rounds up to."""
        return (self._bit_len + 7) // 8

    def _append(self, value: int, width: int) -> None:
        """Push ``width`` bits, flushing every completed byte to the buffer."""
        acc = (self._acc << width) | value
        bits = self._acc_bits + width
        if bits >= 8:
            rest = bits & 7
            self._buffer += (acc >> rest).to_bytes((bits - rest) // 8, "big")
            acc &= (1 << rest) - 1
            bits = rest
        self._acc = acc
        self._acc_bits = bits
        self._bit_len += width

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise SerializationError(f"bit must be 0 or 1, got {bit!r}")
        self._append(bit, 1)

    def write_uint(self, value: int, width: int) -> None:
        """Append ``value`` as an unsigned integer of exactly ``width`` bits."""
        if width <= 0:
            raise SerializationError(f"width must be positive, got {width}")
        if value < 0:
            raise SerializationError(f"cannot write negative value {value} as uint")
        if value.bit_length() > width:
            raise SerializationError(
                f"value {value} does not fit in {width} bits"
            )
        self._append(value, width)

    def write_varint(self, value: int) -> None:
        """Append an unsigned integer using 8-bit LEB128 groups.

        Each group spends 8 bits: a continuation bit plus 7 payload bits.
        Values below 128 therefore cost exactly one byte.
        """
        if value < 0:
            raise SerializationError(f"cannot write negative varint {value}")
        while True:
            group = value & 0x7F
            value >>= 7
            cont = 1 if value else 0
            self._append((cont << 7) | group, 8)
            if not cont:
                return

    def write_svarint(self, value: int) -> None:
        """Append a signed integer with zigzag + varint encoding."""
        self.write_varint(_zigzag_big(value))

    def write_bytes(self, data: bytes) -> None:
        """Append a length-prefixed byte string (bulk copy when byte-aligned)."""
        self.write_varint(len(data))
        if not data:
            return
        if self._acc_bits == 0:
            self._buffer += data
            self._bit_len += 8 * len(data)
        else:
            self._append(int.from_bytes(data, "big"), 8 * len(data))

    def write_bits(self, bits) -> None:
        """Bulk-append a sequence of bits (each 0 or 1), MSB of the run first.

        The vectorized wire codec's write primitive (:mod:`repro.net.codec`):
        with numpy installed the run is packed eight-at-a-time through
        ``np.packbits`` and lands as whole bytes at any alignment — the cost
        is a handful of array operations instead of one Python call per
        field.  Without numpy the run degrades to per-bit appends.  Values
        other than 0/1 are rejected on the pure path and undefined on the
        array path (internal callers only ever pass masks).
        """
        n = len(bits)
        if n == 0:
            return
        if _np is None:
            for bit in bits:
                self.write_bit(int(bit))
            return
        run = _np.asarray(bits, dtype=_np.uint8)
        if self._acc_bits:
            # Prepend the sub-byte remainder so the packed run starts aligned.
            head = _np.empty(self._acc_bits, dtype=_np.uint8)
            for i in range(self._acc_bits):
                head[self._acc_bits - 1 - i] = (self._acc >> i) & 1
            run = _np.concatenate([head, run])
            self._acc = 0
            self._acc_bits = 0
        packed = _np.packbits(run)
        whole, rem = len(run) >> 3, len(run) & 7
        self._buffer += packed[:whole].tobytes()
        if rem:
            self._acc = int(packed[whole]) >> (8 - rem)
            self._acc_bits = rem
        self._bit_len += n

    def getvalue(self) -> bytes:
        """Return the accumulated bits, zero-padded to a whole byte string."""
        if self._acc_bits == 0:
            return bytes(self._buffer)
        pad = 8 - self._acc_bits
        return bytes(self._buffer) + bytes(((self._acc << pad) & 0xFF,))


class BitReader:
    """Replay bit fields from a byte string produced by :class:`BitWriter`.

    Reads advance an incremental byte cursor (a :class:`memoryview` plus a
    sub-byte bit offset): every field touches only the bytes it spans, so
    scanning a message is linear in its size — there is no whole-message
    big integer behind the scenes.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._view = memoryview(data)
        self._total_bits = 8 * len(data)
        self._pos = 0

    @property
    def bits_consumed(self) -> int:
        """Number of bits read so far."""
        return self._pos

    @property
    def bits_remaining(self) -> int:
        """Number of bits not yet read (including any tail padding)."""
        return self._total_bits - self._pos

    def _take(self, width: int) -> int:
        if width <= 0:
            raise SerializationError(f"width must be positive, got {width}")
        pos = self._pos
        if pos + width > self._total_bits:
            raise SerializationError(
                f"read of {width} bits overruns message "
                f"({self.bits_remaining} bits remain)"
            )
        self._pos = pos + width
        start = pos >> 3
        bit_offset = pos & 7
        span = (bit_offset + width + 7) >> 3
        chunk = int.from_bytes(self._view[start:start + span], "big")
        excess = span * 8 - bit_offset - width
        return (chunk >> excess) & ((1 << width) - 1)

    def read_bit(self) -> int:
        """Read a single bit."""
        return self._take(1)

    def peek_bits(self, count: int):
        """The next ``count`` bits as a 0/1 sequence, without consuming them.

        The vectorized wire codec's read primitive: with numpy installed the
        spanned bytes are expanded once through ``np.unpackbits`` (a uint8
        array comes back); without numpy a plain list of ints.  Overruns
        raise the same :class:`~repro.errors.SerializationError` as
        field-at-a-time reads.
        """
        if count < 0:
            raise SerializationError(f"cannot peek {count} bits")
        if count == 0:
            return _np.empty(0, dtype=_np.uint8) if _np is not None else []
        pos = self._pos
        if pos + count > self._total_bits:
            raise SerializationError(
                f"read of {count} bits overruns message "
                f"({self.bits_remaining} bits remain)"
            )
        start = pos >> 3
        bit_offset = pos & 7
        span = (bit_offset + count + 7) >> 3
        if _np is None:
            chunk = int.from_bytes(self._view[start:start + span], "big")
            excess = span * 8 - bit_offset - count
            value = (chunk >> excess) & ((1 << count) - 1)
            return [(value >> (count - 1 - i)) & 1 for i in range(count)]
        raw = _np.frombuffer(self._view[start:start + span], dtype=_np.uint8)
        return _np.unpackbits(raw)[bit_offset:bit_offset + count]

    def read_bits(self, count: int):
        """Read ``count`` bits as a 0/1 sequence (see :meth:`peek_bits`)."""
        bits = self.peek_bits(count)
        self._pos += count
        return bits

    def skip_bits(self, count: int) -> None:
        """Advance past ``count`` bits already examined via :meth:`peek_bits`."""
        if count < 0 or self._pos + count > self._total_bits:
            raise SerializationError(
                f"skip of {count} bits overruns message "
                f"({self.bits_remaining} bits remain)"
            )
        self._pos += count

    def read_uint(self, width: int) -> int:
        """Read an unsigned integer of exactly ``width`` bits."""
        return self._take(width)

    def read_varint(self) -> int:
        """Read an unsigned LEB128 varint."""
        value = 0
        shift = 0
        while True:
            group = self._take(8)
            value |= (group & 0x7F) << shift
            if not group & 0x80:
                return value
            shift += 7
            if shift > 1024:
                raise SerializationError("varint exceeds 1024 bits; corrupt stream")

    def read_svarint(self) -> int:
        """Read a zigzag-encoded signed varint."""
        return zigzag_decode(self.read_varint())

    def read_bytes(self) -> bytes:
        """Read a length-prefixed byte string.

        Byte-aligned reads (the common case after whole-byte headers) are a
        single buffer slice; unaligned reads shift once over the spanned
        region instead of taking one byte at a time.
        """
        length = self.read_varint()
        if 8 * length > self.bits_remaining:
            raise SerializationError(
                f"byte string of length {length} overruns message"
            )
        if length == 0:
            return b""
        pos = self._pos
        start = pos >> 3
        bit_offset = pos & 7
        self._pos = pos + 8 * length
        if bit_offset == 0:
            return bytes(self._view[start:start + length])
        span = length + 1
        chunk = int.from_bytes(self._view[start:start + span], "big")
        chunk >>= 8 - bit_offset
        return (chunk & ((1 << (8 * length)) - 1)).to_bytes(length, "big")

    def expect_end(self, *, allow_padding: bool = True) -> None:
        """Assert the stream is exhausted (up to sub-byte zero padding)."""
        if not allow_padding:
            if self.bits_remaining:
                raise SerializationError(
                    f"{self.bits_remaining} unread bits at end of message"
                )
            return
        if self.bits_remaining >= 8:
            raise SerializationError(
                f"{self.bits_remaining} unread bits at end of message"
            )
        while self.bits_remaining:
            if self.read_bit():
                raise SerializationError("nonzero padding at end of message")
