"""Two-party channels with exact bit accounting.

Reconciliation protocols run between *Alice* and *Bob*.  Every channel here
records each message (direction, payload, label) so that benchmarks report
measured communication rather than analytic estimates, and tests can assert
on round counts.  Two delivery disciplines share that recording core:

* :class:`SimulatedChannel` — synchronous; ``send`` returns the payload as
  the receiver sees it.  The classic in-process simulation.
* :class:`LoopbackChannel` — asynchronous; ``send`` additionally enqueues
  the payload per direction and ``receive`` awaits it, so the two endpoints
  can run as independent asyncio tasks (the stepping stone between the
  simulation and real TCP in :mod:`repro.serve`).

Both carry the *same* sans-I/O session objects (:mod:`repro.session`), so
simulation, loopback asyncio, and TCP runs are byte-comparable.
"""

from __future__ import annotations

import asyncio
import enum
from dataclasses import dataclass, field

from repro.errors import ChannelError


class Direction(enum.Enum):
    """Which party sent a message."""

    ALICE_TO_BOB = "A->B"
    BOB_TO_ALICE = "B->A"


@dataclass(frozen=True)
class Message:
    """One message on the channel.

    Attributes
    ----------
    direction:
        Who sent it.
    payload:
        The exact bytes shipped.
    label:
        Human-readable tag used in transcripts (e.g. ``"hierarchy-sketch"``).
    """

    direction: Direction
    payload: bytes
    label: str = ""

    @property
    def bits(self) -> int:
        """Size of the payload in bits."""
        return 8 * len(self.payload)


def count_rounds(messages) -> int:
    """Rounds in a message sequence: direction changes plus one.

    The single definition of the paper's round-counting convention —
    consecutive same-direction messages share a round.  Used by both
    :attr:`SimulatedChannel.rounds` and
    :meth:`~repro.net.transcript.Transcript.from_messages`.
    """
    rounds = 0
    previous = None
    for message in messages:
        if message.direction is not previous:
            rounds += 1
            previous = message.direction
    return rounds


@dataclass
class SimulatedChannel:
    """Records the messages of one protocol execution.

    The channel is deliberately dumb: it neither reorders nor corrupts.
    Failure injection is done by tests mutating payloads before ``deliver``.
    """

    messages: list[Message] = field(default_factory=list)
    closed: bool = False

    def send(self, direction: Direction, payload: bytes, label: str = "") -> bytes:
        """Record a message and return the payload (as the receiver sees it)."""
        if self.closed:
            raise ChannelError("cannot send on a closed channel")
        if not isinstance(payload, (bytes, bytearray)):
            raise ChannelError(
                f"payload must be bytes, got {type(payload).__name__}"
            )
        message = Message(direction, bytes(payload), label)
        self.messages.append(message)
        return message.payload

    def close(self) -> None:
        """Mark the protocol as finished; further sends are an error."""
        self.closed = True

    @property
    def total_bits(self) -> int:
        """Total bits shipped in both directions."""
        return sum(message.bits for message in self.messages)

    @property
    def total_bytes(self) -> int:
        """Total bytes shipped in both directions."""
        return sum(len(message.payload) for message in self.messages)

    @property
    def rounds(self) -> int:
        """Number of direction changes plus one (= number of messages when
        parties strictly alternate; consecutive same-direction messages are
        counted as a single round, matching the communication-complexity
        convention used by the paper)."""
        return count_rounds(self.messages)

    def bits_from(self, direction: Direction) -> int:
        """Total bits sent in one direction."""
        return sum(m.bits for m in self.messages if m.direction is direction)


_CLOSED = object()  # sentinel waking every pending LoopbackChannel.receive


@dataclass
class LoopbackChannel(SimulatedChannel):
    """An asyncio in-process channel: recorded *and* actually delivered.

    ``send`` keeps the :class:`SimulatedChannel` recording contract (and
    return value) but also enqueues the payload on the direction's queue;
    the peer's task awaits it with :meth:`receive`.  ``close`` wakes every
    pending receiver with :class:`~repro.errors.ChannelError`, so a dead
    peer can never leave the other side hanging.

    Must be constructed (and used) inside a running event loop's thread;
    the queues are plain :class:`asyncio.Queue` instances.
    """

    def __post_init__(self) -> None:
        self._queues: dict[Direction, asyncio.Queue] = {
            direction: asyncio.Queue() for direction in Direction
        }

    def send(self, direction: Direction, payload: bytes, label: str = "") -> bytes:
        """Record the message and enqueue it for the receiving task."""
        delivered = super().send(direction, payload, label)
        self._queues[direction].put_nowait(delivered)
        return delivered

    async def receive(self, direction: Direction) -> bytes:
        """Await the next payload travelling in ``direction``."""
        if self.closed and self._queues[direction].empty():
            raise ChannelError("cannot receive on a closed channel")
        payload = await self._queues[direction].get()
        if payload is _CLOSED:
            self._queues[direction].put_nowait(_CLOSED)  # wake later waiters
            raise ChannelError("channel closed while awaiting a message")
        return payload

    def close(self) -> None:
        """Close the channel and wake every pending receiver."""
        super().close()
        for queue in self._queues.values():
            queue.put_nowait(_CLOSED)
