"""A simulated two-party channel with exact bit accounting.

Reconciliation protocols run between *Alice* and *Bob*.  The channel records
every message (direction, payload, label) so that benchmarks report measured
communication rather than analytic estimates, and tests can assert on round
counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ChannelError


class Direction(enum.Enum):
    """Which party sent a message."""

    ALICE_TO_BOB = "A->B"
    BOB_TO_ALICE = "B->A"


@dataclass(frozen=True)
class Message:
    """One message on the channel.

    Attributes
    ----------
    direction:
        Who sent it.
    payload:
        The exact bytes shipped.
    label:
        Human-readable tag used in transcripts (e.g. ``"hierarchy-sketch"``).
    """

    direction: Direction
    payload: bytes
    label: str = ""

    @property
    def bits(self) -> int:
        """Size of the payload in bits."""
        return 8 * len(self.payload)


@dataclass
class SimulatedChannel:
    """Records the messages of one protocol execution.

    The channel is deliberately dumb: it neither reorders nor corrupts.
    Failure injection is done by tests mutating payloads before ``deliver``.
    """

    messages: list[Message] = field(default_factory=list)
    closed: bool = False

    def send(self, direction: Direction, payload: bytes, label: str = "") -> bytes:
        """Record a message and return the payload (as the receiver sees it)."""
        if self.closed:
            raise ChannelError("cannot send on a closed channel")
        if not isinstance(payload, (bytes, bytearray)):
            raise ChannelError(
                f"payload must be bytes, got {type(payload).__name__}"
            )
        message = Message(direction, bytes(payload), label)
        self.messages.append(message)
        return message.payload

    def close(self) -> None:
        """Mark the protocol as finished; further sends are an error."""
        self.closed = True

    @property
    def total_bits(self) -> int:
        """Total bits shipped in both directions."""
        return sum(message.bits for message in self.messages)

    @property
    def total_bytes(self) -> int:
        """Total bytes shipped in both directions."""
        return sum(len(message.payload) for message in self.messages)

    @property
    def rounds(self) -> int:
        """Number of direction changes plus one (= number of messages when
        parties strictly alternate; consecutive same-direction messages are
        counted as a single round, matching the communication-complexity
        convention used by the paper)."""
        rounds = 0
        previous = None
        for message in self.messages:
            if message.direction is not previous:
                rounds += 1
                previous = message.direction
        return rounds

    def bits_from(self, direction: Direction) -> int:
        """Total bits sent in one direction."""
        return sum(m.bits for m in self.messages if m.direction is direction)
