"""Tiny statistics helpers for the benchmark harness.

Everything benchmarks aggregate goes through :func:`summarize`, so every
reported number carries its trial count and a normal-approximation 95%
confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError


@dataclass(frozen=True)
class Summary:
    """Mean, spread and confidence half-width of one measured series."""

    mean: float
    std: float
    ci95: float
    n: int
    minimum: float
    maximum: float

    def format(self, precision: int = 1) -> str:
        """``mean ± ci`` rendering used in benchmark tables."""
        return f"{self.mean:.{precision}f}±{self.ci95:.{precision}f}"


def mean_ci(values: Sequence[float]) -> tuple[float, float]:
    """Mean and 95% CI half-width of a sample (normal approximation)."""
    summary = summarize(values)
    return summary.mean, summary.ci95


def summarize(values: Sequence[float]) -> Summary:
    """Full summary of a measured series."""
    if not values:
        raise ConfigError("cannot summarize an empty series")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Summary(mean, 0.0, 0.0, 1, mean, mean)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(variance)
    ci95 = 1.96 * std / math.sqrt(n)
    return Summary(mean, std, ci95, n, min(values), max(values))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used for approximation-ratio aggregation)."""
    if not values:
        raise ConfigError("cannot aggregate an empty series")
    if any(v <= 0 for v in values):
        raise ConfigError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
