"""Benchmark-harness support: statistics, tables, and the method registry."""

from repro.analysis.methods import MethodRun, default_methods, run_method
from repro.analysis.stats import Summary, mean_ci, summarize
from repro.analysis.tables import Table

__all__ = [
    "MethodRun",
    "Summary",
    "Table",
    "default_methods",
    "mean_ci",
    "run_method",
    "summarize",
]
