"""Plain-text tables for benchmark output.

Benchmarks print the same rows the paper's tables/figures report; this
renderer keeps them aligned and diff-friendly (results are also written to
``benchmarks/results/``).
"""

from __future__ import annotations

from repro.errors import ConfigError


class Table:
    """A fixed-column ASCII table.

    >>> table = Table(["method", "bits"])
    >>> table.add_row(["robust", 1234])
    >>> print(table.render())  # doctest: +NORMALIZE_WHITESPACE
    method | bits
    ------ | ----
    robust | 1234
    """

    def __init__(self, columns: list[str], title: str = ""):
        if not columns:
            raise ConfigError("table needs at least one column")
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: list[list[str]] = []

    def add_row(self, values) -> None:
        """Append one row; values are stringified, floats get 1 decimal."""
        rendered = []
        for value in values:
            if isinstance(value, float):
                rendered.append(f"{value:.1f}")
            else:
                rendered.append(str(value))
        if len(rendered) != len(self.columns):
            raise ConfigError(
                f"row has {len(rendered)} values, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(rendered)

    def render(self) -> str:
        """Render title, header, separator and rows."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for index, value in enumerate(row):
                widths[index] = max(widths[index], len(value))
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        header = " | ".join(
            column.ljust(width) for column, width in zip(self.columns, widths)
        )
        lines.append(header.rstrip())
        lines.append(" | ".join("-" * width for width in widths).rstrip())
        for row in self.rows:
            line = " | ".join(
                value.ljust(width) for value, width in zip(row, widths)
            )
            lines.append(line.rstrip())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
