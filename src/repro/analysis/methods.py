"""Uniform method registry: every benchmark compares the same contenders.

Wraps the robust protocols and the exact baselines behind one
``run(workload) -> MethodRun`` call so benchmark loops stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.baselines.cpi import CPIReconciler
from repro.baselines.exact_ibf import ExactIBF
from repro.baselines.fixed_grid import FixedGridQuantize
from repro.baselines.full_transfer import FullTransfer
from repro.core.adaptive import reconcile_adaptive
from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.emd.matching import emd
from repro.emd.onedim import emd_1d
from repro.errors import ReconciliationFailure, ReproError
from repro.workloads.base import WorkloadPair

#: Exact-EMD size cutoff; larger sets fall back to the grid estimator.
EXACT_EMD_LIMIT = 600


@dataclass
class MethodRun:
    """One method's outcome on one workload."""

    method: str
    bits: int
    rounds: int
    repaired: list | None
    failed: bool = False
    failure: str = ""

    def emd_to(self, workload: WorkloadPair) -> float:
        """EMD between Alice's set and the repaired set (exact or estimated)."""
        if self.repaired is None:
            return float("nan")
        return measure_emd(workload, self.repaired)


def measure_emd(workload: WorkloadPair, repaired: list) -> float:
    """Pick the right EMD oracle for the set size."""
    if len(repaired) != len(workload.alice):
        return float("nan")
    if workload.dimension == 1:
        return emd_1d(workload.alice, repaired)
    if len(repaired) <= EXACT_EMD_LIMIT:
        return emd(workload.alice, repaired, workload.params.get("metric", "l1"))
    from repro.emd.estimate import GridEmdEstimator

    estimator = GridEmdEstimator(workload.delta, workload.dimension, seed=17)
    return estimator.estimate(workload.alice, repaired)


def run_method(runner: Callable[[], MethodRun], method: str) -> MethodRun:
    """Execute one method thunk, converting failures into a marked result."""
    try:
        return runner()
    except (ReconciliationFailure, ReproError) as exc:
        return MethodRun(
            method=method, bits=0, rounds=0, repaired=None,
            failed=True, failure=str(exc),
        )


def default_methods(
    workload: WorkloadPair,
    k: int,
    seed: int = 0,
    include_cpi: bool = True,
    fixed_grid_level: int | None = None,
) -> dict[str, Callable[[], MethodRun]]:
    """The standard contender set for a workload.

    Returns label → thunk; callers invoke the thunks they want.  CPI is
    skippable (cubic decode makes it slow once differences are large) and
    is automatically excluded when the packed universe exceeds its field.
    """
    delta, dimension = workload.delta, workload.dimension
    config = ProtocolConfig(delta=delta, dimension=dimension, k=k, seed=seed)

    def robust() -> MethodRun:
        result = reconcile(workload.alice, workload.bob, config)
        return MethodRun(
            method="robust",
            bits=result.transcript.total_bits,
            rounds=result.transcript.rounds,
            repaired=result.repaired,
        )

    def adaptive() -> MethodRun:
        result = reconcile_adaptive(workload.alice, workload.bob, config)
        return MethodRun(
            method="robust-adaptive",
            bits=result.transcript.total_bits,
            rounds=result.transcript.rounds,
            repaired=result.repaired,
        )

    def full() -> MethodRun:
        result = FullTransfer(delta, dimension).run(workload.alice, workload.bob)
        return MethodRun(
            method="full-transfer",
            bits=result.total_bits,
            rounds=result.transcript.rounds,
            repaired=result.repaired,
        )

    def exact_ibf() -> MethodRun:
        result = ExactIBF(delta, dimension, seed=seed).run(
            workload.alice, workload.bob
        )
        return MethodRun(
            method="exact-ibf",
            bits=result.total_bits,
            rounds=result.transcript.rounds,
            repaired=result.repaired,
        )

    def cpi() -> MethodRun:
        result = CPIReconciler(delta, dimension, seed=seed).run(
            workload.alice, workload.bob
        )
        return MethodRun(
            method="cpi",
            bits=result.total_bits,
            rounds=result.transcript.rounds,
            repaired=result.repaired,
        )

    def fixed_grid() -> MethodRun:
        grid_level = (
            fixed_grid_level
            if fixed_grid_level is not None
            else max(1, (delta - 1).bit_length() // 2)
        )
        result = FixedGridQuantize(delta, dimension, grid_level, seed=seed).run(
            workload.alice, workload.bob
        )
        return MethodRun(
            method="fixed-grid",
            bits=result.total_bits,
            rounds=result.transcript.rounds,
            repaired=result.repaired,
        )

    methods: dict[str, Callable[[], MethodRun]] = {
        "robust": lambda: run_method(robust, "robust"),
        "robust-adaptive": lambda: run_method(adaptive, "robust-adaptive"),
        "exact-ibf": lambda: run_method(exact_ibf, "exact-ibf"),
        "fixed-grid": lambda: run_method(fixed_grid, "fixed-grid"),
        "full-transfer": lambda: run_method(full, "full-transfer"),
    }
    key_bits = dimension * max(1, (delta - 1).bit_length())
    if include_cpi and key_bits <= 60:
        methods["cpi"] = lambda: run_method(cpi, "cpi")
    return methods
