"""Which parts of the tree each invariant protects.

Scopes are posix path prefixes relative to the ``repro`` package root.
They are defined once here — not inside the rules — so the protected
surface is reviewable at a glance and rules cannot drift apart on what
"protocol code" means.
"""

from __future__ import annotations

from typing import Iterable

#: Modules that must stay sans-I/O: the protocol state machines and every
#: substrate they are built on.  The transports (``serve/``, ``net/channel``)
#: and the drivers wrapping sessions for asyncio live *outside* this set on
#: purpose — they are the I/O layer.
SANS_IO = (
    "session/",
    "core/",
    "iblt/",
    "gf/",
    "net/bits.py",
    "net/codec.py",
)

#: Protocol code whose behaviour must be a pure function of inputs and the
#: shared public-coin seed: the sans-I/O set plus the sharded engine (its
#: shard placement and wire bytes are part of the protocol; its executors
#: only affect scheduling).
PROTOCOL = SANS_IO + ("scale/",)

#: The one module allowed to assume numpy exists at *use* time (it is the
#: numpy backend); even it must keep the import itself guarded because the
#: backend registry imports it unconditionally.
NUMPY_BACKEND = "iblt/backends/vector.py"


def in_scope(relpath: str, prefixes: Iterable[str]) -> bool:
    """True when ``relpath`` is one of, or lies under, the given prefixes."""
    for prefix in prefixes:
        if prefix.endswith("/"):
            if relpath.startswith(prefix):
                return True
        elif relpath == prefix:
            return True
    return False
