"""``python -m repro.lint`` — the repro-lint command-line runner."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.lint.engine import run_lint
from repro.lint.rules import ALL_RULES


def _default_root() -> str:
    """The installed package itself (``.../src/repro``)."""
    return str(Path(__file__).resolve().parents[1])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant checker for the repro codebase: sans-I/O "
            "purity, numpy-optional imports, typed errors, determinism, "
            "wire-magic uniqueness, backend contracts, executor safety."
        ),
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=None,
        help="package tree to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (e.g. RPL001,RPL003)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="also write the JSON report to FILE (whatever --format says)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.CODE}  {rule.NAME:24s} {rule.DESCRIPTION}")
        print("RPL900  waiver-discipline        malformed waiver (missing reason / bad syntax / unknown code)")
        print("RPL901  waiver-discipline        stale waiver (waives a line with no finding)")
        print("RPL902  parse-error              file does not parse")
        return 0
    select = None
    if args.select:
        select = {code.strip() for code in args.select.split(",") if code.strip()}
    root = args.root if args.root is not None else _default_root()
    try:
        report = run_lint(root, select=select)
    except ReproError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    if args.output:
        Path(args.output).write_text(report.render_json() + "\n", encoding="utf-8")
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
