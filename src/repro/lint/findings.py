"""Finding and report types shared by every lint rule.

A :class:`Finding` is one violation at one source line; a
:class:`LintReport` is the outcome of a whole run — findings already
waiver-filtered, plus enough metadata to render the text and JSON outputs
and to derive the process exit code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    path: str  #: posix path relative to the linted package root
    line: int  #: 1-based source line
    code: str  #: stable rule code, e.g. ``"RPL003"``
    message: str  #: human-readable description of the violation
    rule: str = field(default="", compare=False)  #: short rule name

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class LintReport:
    """The result of linting one package tree."""

    root: str  #: the linted package root, as given
    files: int  #: number of Python files scanned
    findings: list[Finding]  #: waiver-filtered findings, sorted
    waivers_used: int = 0  #: well-formed waivers that suppressed a finding

    @property
    def counts(self) -> dict[str, int]:
        """Finding count per rule code, code-ascending."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def exit_code(self) -> int:
        """``0`` when clean, ``1`` when any finding survived waivers.

        (``2`` is reserved for runner errors — bad paths, bad flags — and
        produced by the CLI, never by a report.)
        """
        return 1 if self.findings else 0

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        summary = (
            f"repro-lint: {len(self.findings)} finding"
            f"{'' if len(self.findings) == 1 else 's'} in {self.files} files"
        )
        if self.counts:
            summary += " (" + ", ".join(
                f"{code}: {n}" for code, n in self.counts.items()
            ) + ")"
        if self.waivers_used:
            summary += f"; {self.waivers_used} waived"
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "tool": "repro-lint",
            "schema_version": 1,
            "root": self.root,
            "files": self.files,
            "findings": [finding.to_dict() for finding in self.findings],
            "counts": self.counts,
            "waivers_used": self.waivers_used,
            "exit_code": self.exit_code(),
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)
