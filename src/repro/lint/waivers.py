"""Inline waivers: ``# repro-lint: waive[RPL003] reason=...``.

A waiver suppresses findings of one rule code on one line.  Written at the
end of a code line it targets that line; written as a standalone comment it
targets the next line that holds code.  The reason is mandatory — a waiver
is a reviewed exception to an invariant, and the justification must travel
with it.

The waiver engine polices itself:

* ``RPL900`` — a waiver that is malformed: missing reason, unparsable
  syntax after the ``repro-lint:`` marker, or an unknown rule code.
* ``RPL901`` — a *stale* waiver: well-formed, but no finding of its code
  exists on its target line.  Stale waivers are how silently-fixed (or
  mis-anchored) exceptions get cleaned up instead of accumulating.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.findings import Finding
from repro.lint.project import SourceModule

MALFORMED_WAIVER = "RPL900"
STALE_WAIVER = "RPL901"

#: Anything carrying this marker is treated as an attempted waiver.
_MARKER = re.compile(r"#\s*repro-lint:\s*(?P<tail>.*)$")
#: The well-formed tail: ``waive[CODE] reason=<non-empty>``.
_WAIVE = re.compile(
    r"^waive\[(?P<code>[A-Za-z0-9]+)\]\s*(?:reason=(?P<reason>.*\S))?\s*$"
)


@dataclass
class Waiver:
    """One well-formed waiver comment."""

    code: str
    reason: str
    line: int  #: line the comment is written on
    target: int  #: line whose findings it suppresses
    used: bool = field(default=False, compare=False)


def _code_lines(module: SourceModule) -> set[int]:
    """Lines that hold at least one non-comment token (i.e. actual code)."""
    lines: set[int] = set()
    for token in _tokens(module):
        if token.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            continue
        for lineno in range(token.start[0], token.end[0] + 1):
            lines.add(lineno)
    return lines


def _tokens(module: SourceModule):
    # The module parsed as an AST, so tokenization cannot fail.
    return tokenize.generate_tokens(io.StringIO(module.source).readline)


def collect_waivers(
    module: SourceModule, known_codes: set[str]
) -> tuple[list[Waiver], list[Finding]]:
    """Parse every waiver comment of one module.

    Returns the well-formed waivers plus the ``RPL900`` findings for the
    malformed ones.  Comments are read with :mod:`tokenize`, so markers
    inside string literals are never mistaken for waivers.
    """
    waivers: list[Waiver] = []
    malformed: list[Finding] = []
    code_lines = _code_lines(module)
    for token in _tokens(module):
        if token.type != tokenize.COMMENT:
            continue
        marker = _MARKER.search(token.string)
        if marker is None:
            continue
        lineno = token.start[0]
        match = _WAIVE.match(marker.group("tail").strip())
        if match is None:
            malformed.append(
                module.finding(
                    MALFORMED_WAIVER,
                    lineno,
                    "unparsable repro-lint comment; expected "
                    "'# repro-lint: waive[RPLnnn] reason=<why>'",
                    rule="waiver-discipline",
                )
            )
            continue
        code = match.group("code")
        reason = (match.group("reason") or "").strip()
        if code not in known_codes:
            malformed.append(
                module.finding(
                    MALFORMED_WAIVER,
                    lineno,
                    f"waiver names unknown rule code {code!r}",
                    rule="waiver-discipline",
                )
            )
            continue
        if not reason:
            malformed.append(
                module.finding(
                    MALFORMED_WAIVER,
                    lineno,
                    f"waiver for {code} has no reason; append "
                    "'reason=<why this line is exempt>'",
                    rule="waiver-discipline",
                )
            )
            continue
        target = lineno
        if lineno not in code_lines:
            # Standalone comment: it covers the next line that holds code.
            later = [line for line in code_lines if line > lineno]
            target = min(later) if later else lineno
        waivers.append(Waiver(code=code, reason=reason, line=lineno, target=target))
    return waivers, malformed


def apply_waivers(
    findings: list[Finding],
    waivers_by_path: dict[str, list[Waiver]],
    active_codes: set[str],
) -> tuple[list[Finding], list[Finding], int]:
    """Suppress waived findings; report stale waivers.

    Returns ``(kept_findings, stale_findings, used_count)``.  Waivers for
    rules outside ``active_codes`` (e.g. deselected via ``--select``) are
    neither applied nor reported stale — their rule never ran.
    """
    kept: list[Finding] = []
    for finding in findings:
        waived = False
        for waiver in waivers_by_path.get(finding.path, ()):
            if waiver.code == finding.code and waiver.target == finding.line:
                waiver.used = True
                waived = True
        if not waived:
            kept.append(finding)
    stale: list[Finding] = []
    used = 0
    for path, waivers in sorted(waivers_by_path.items()):
        for waiver in waivers:
            if waiver.used:
                used += 1
            elif waiver.code in active_codes:
                stale.append(
                    Finding(
                        path=path,
                        line=waiver.line,
                        code=STALE_WAIVER,
                        message=(
                            f"stale waiver: no {waiver.code} finding on line "
                            f"{waiver.target}; delete the waiver"
                        ),
                        rule="waiver-discipline",
                    )
                )
    return kept, stale, used
