"""The rule registry: one module per invariant, each with a stable code.

Every rule module exposes ``CODE`` (stable, e.g. ``"RPL003"``), ``NAME``
(short kebab-case identifier), ``DESCRIPTION`` (one line for ``--list``),
and ``check(project) -> list[Finding]``.  Register new rules by adding the
module here; codes are append-only — a retired rule's code is never
reused.
"""

from __future__ import annotations

from repro.lint.rules import (
    backend_contract,
    determinism,
    executor_safety,
    numpy_optional,
    sans_io,
    store_discipline,
    typed_errors,
    wire_magic,
)

#: All rule modules, code-ascending.
ALL_RULES = (
    sans_io,  # RPL001
    numpy_optional,  # RPL002
    typed_errors,  # RPL003
    determinism,  # RPL004
    wire_magic,  # RPL005
    backend_contract,  # RPL006
    executor_safety,  # RPL007
    store_discipline,  # RPL008
)

#: code -> rule module.
RULES_BY_CODE = {rule.CODE: rule for rule in ALL_RULES}

#: Codes an inline waiver may name.
WAIVABLE_CODES = frozenset(RULES_BY_CODE)
