"""RPL002 — numpy stays an optional extra with a pure fallback.

Since PR 1 the library must import — and produce bit-identical wire bytes —
without numpy installed; the no-numpy CI leg enforces the behaviour, this
rule enforces the *shape* that makes the behaviour possible:

* numpy may only be imported as a whole module with an alias
  (``import numpy as _np``), never ``from numpy import ...`` — the alias is
  what the fallback path tests;
* the import must sit in a ``try`` whose ``except ImportError`` arm binds
  that same alias to ``None`` (the machine-checkable core of "defines a
  pure fallback path": every use site can gate on ``_np is None``);
* only ``iblt/backends/vector.py`` — the numpy backend itself — may assume
  numpy at use time, and even it must guard the import because the backend
  registry imports the module unconditionally.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.project import Project, SourceModule

CODE = "RPL002"
NAME = "numpy-optional"
DESCRIPTION = (
    "numpy imported only as 'import numpy as X' under try/except "
    "ImportError with 'X = None' in the handler (pure fallback)"
)

_IMPORT_ERRORS = {"ImportError", "ModuleNotFoundError"}


def _catches_import_error(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:
        return True  # bare except catches ImportError too
    names = kind.elts if isinstance(kind, ast.Tuple) else [kind]
    for name in names:
        if isinstance(name, ast.Name) and name.id in _IMPORT_ERRORS:
            return True
        if isinstance(name, ast.Attribute) and name.attr in _IMPORT_ERRORS:
            return True
    return False


def _none_bound_names(handler: ast.ExceptHandler) -> set[str]:
    """Names the handler assigns ``None`` to (``_np = None``)."""
    bound: set[str] = set()
    for stmt in ast.walk(handler):
        if not isinstance(stmt, ast.Assign):
            continue
        value = stmt.value
        if not (isinstance(value, ast.Constant) and value.value is None):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                bound.add(target.id)
    return bound


def _guarded_imports(module: SourceModule) -> dict[ast.stmt, set[str]]:
    """Map each import statement under a guarding Try to the fallback names.

    An import is *guarded* when it sits in the body of a ``try`` that has an
    ``except ImportError`` handler; the mapped set holds every name that
    handler rebinds to ``None``.
    """
    guarded: dict[ast.stmt, set[str]] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Try):
            continue
        fallback: set[str] = set()
        catches = False
        for handler in node.handlers:
            if _catches_import_error(handler):
                catches = True
                fallback |= _none_bound_names(handler)
        if not catches:
            continue
        for stmt in node.body:
            for inner in ast.walk(stmt):
                if isinstance(inner, (ast.Import, ast.ImportFrom)):
                    guarded[inner] = fallback
    return guarded


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        guarded = _guarded_imports(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.level == 0 and (node.module or "").split(".")[0] == "numpy":
                    findings.append(
                        module.finding(
                            CODE,
                            node.lineno,
                            "'from numpy import ...' defeats the optional-"
                            "dependency discipline; use 'import numpy as "
                            "_np' under try/except ImportError so the "
                            "fallback can set the alias to None",
                            rule=NAME,
                        )
                    )
                continue
            if not isinstance(node, ast.Import):
                continue
            for alias in node.names:
                if alias.name.split(".")[0] != "numpy":
                    continue
                bound = alias.asname or alias.name.split(".")[0]
                if node not in guarded:
                    findings.append(
                        module.finding(
                            CODE,
                            node.lineno,
                            "unguarded numpy import; numpy is an optional "
                            "extra — wrap in try/except ImportError and "
                            f"bind '{bound} = None' in the handler",
                            rule=NAME,
                        )
                    )
                elif bound not in guarded[node]:
                    findings.append(
                        module.finding(
                            CODE,
                            node.lineno,
                            f"numpy import is guarded but the except "
                            f"ImportError arm never binds '{bound} = None'; "
                            "without the sentinel there is no pure fallback "
                            "path to gate on",
                            rule=NAME,
                        )
                    )
    return findings
