"""RPL008 — store/ writes flow through the storage seam.

The durable store's crash-safety argument rests on every byte moving
through :mod:`repro.store.storage`: that is where ``OSError`` becomes a
typed :class:`~repro.errors.StoreError`, where the
:class:`~repro.store.crash.CrashInjector` counts operations (the crash
matrix only covers kill points it can see), and where the one
``os.replace`` + directory-fsync pair lives (``publish``).  A bare
``open(..., "w")`` or stray ``os.replace`` elsewhere in ``store/`` is a
write the matrix never kills and the error taxonomy never wraps —
exactly the kind of hole that turns "proved crash-safe" into "probably
crash-safe".

Concretely, inside ``store/``:

* outside the seam module, no ``open(...)`` calls and no ``os.*`` /
  ``shutil.*`` file operations at all — read *and* write paths go
  through a storage backend;
* inside the seam module, ``os.replace`` / ``os.rename`` may appear
  only in the ``publish`` helper.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.project import Project

CODE = "RPL008"
NAME = "store-write-discipline"
DESCRIPTION = (
    "store/ I/O flows through the storage seam: no open() or os/shutil "
    "file ops outside storage.py; os.replace only inside publish"
)

_SCOPE_PREFIX = "store/"
_SEAM = "store/storage.py"

#: ``os`` attributes that touch the filesystem (reads included: a read
#: outside the seam dodges the typed-error wrapping just the same).
OS_FILE_OPS = frozenset(
    {
        "fdopen", "fsync", "ftruncate", "link", "makedirs", "mkdir",
        "open", "remove", "removedirs", "rename", "renames", "replace",
        "rmdir", "symlink", "truncate", "unlink", "write",
    }
)

#: The atomic-publish primitives the seam itself must confine.
RENAME_OPS = frozenset({"rename", "renames", "replace"})


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        if not module.relpath.startswith(_SCOPE_PREFIX):
            continue
        seam = module.relpath == _SEAM
        for function, node in _walk_with_function(module.tree, None):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open" and not seam:
                findings.append(
                    module.finding(
                        CODE, node.lineno,
                        "bare open() in store code; all store I/O must go "
                        "through a repro.store.storage backend so errors are "
                        "typed and the crash injector sees the operation",
                        rule=NAME,
                    )
                )
                continue
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("os", "shutil")
            ):
                continue
            attr = func.attr
            if func.value.id == "shutil" or attr in OS_FILE_OPS:
                if not seam:
                    findings.append(
                        module.finding(
                            CODE, node.lineno,
                            f"{func.value.id}.{attr}() in store code outside "
                            "the storage seam; file operations belong in "
                            "repro.store.storage",
                            rule=NAME,
                        )
                    )
                elif attr in RENAME_OPS and function != "publish":
                    findings.append(
                        module.finding(
                            CODE, node.lineno,
                            f"os.{attr}() outside the publish helper; the "
                            "atomic rename + directory fsync pair is the "
                            "publish method's job alone",
                            rule=NAME,
                        )
                    )
    return findings


def _walk_with_function(node, function):
    """Yield ``(enclosing_function_name, descendant)`` pairs."""
    for child in ast.iter_child_nodes(node):
        name = function
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            name = child.name
        yield name, child
        yield from _walk_with_function(child, name)
