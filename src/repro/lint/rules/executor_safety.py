"""RPL007 — functions submitted to shard executors must not mutate shared
state.

The sharded engine maps one task per shard over a serial / thread /
process pool (:mod:`repro.scale.executors`).  The same task function must
be correct under all three, which it is only when it communicates through
its arguments and return value alone: a task that mutates a module global
or a closed-over mutable is a data race under the thread pool and a
silent no-op under the process pool (the mutation happens in the worker's
copy) — both far nastier to debug than this rule is to satisfy.

This is a race-detector-*lite*: it analyses the body of every function
whose *name* is passed to a ``.map(...)`` / ``.submit(...)`` call inside
``scale/`` (plus lambdas submitted inline), flagging

* ``global`` / ``nonlocal`` declarations,
* stores through subscripts or attributes whose base name is not bound
  locally (``CACHE[k] = v``, ``obj.attr = v``),
* known mutating method calls on names not bound locally
  (``RESULTS.append(...)``, ``SEEN.update(...)``).

Reads of globals (constants, other functions) are fine; calls into other
functions are not followed.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.project import Project, SourceModule

CODE = "RPL007"
NAME = "executor-safety"
DESCRIPTION = (
    "functions submitted to scale/ executor pools must not mutate module "
    "globals or closed-over mutables"
)

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "extendleft", "insert", "pop", "popitem", "remove", "reverse",
        "setdefault", "sort", "update",
    }
)

_SCOPE_PREFIX = "scale/"


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        if not module.relpath.startswith(_SCOPE_PREFIX):
            continue
        functions = {
            node.name: node
            for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        analysed: set[str] = set()
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("map", "submit")
                and node.args
            ):
                continue
            submitted = node.args[0]
            if isinstance(submitted, ast.Lambda):
                findings.extend(
                    _analyse(module, submitted, f"<lambda:{submitted.lineno}>",
                             node.lineno)
                )
            elif isinstance(submitted, ast.Name) and submitted.id in functions:
                if submitted.id in analysed:
                    continue
                analysed.add(submitted.id)
                findings.extend(
                    _analyse(module, functions[submitted.id], submitted.id,
                             node.lineno)
                )
    return findings


def _local_names(fn) -> set[str]:
    """Names bound anywhere inside ``fn`` (over-approximate, so flagged
    names are definitely non-local)."""
    names: set[str] = set()
    args = fn.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                names.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    inner = node.args
                    for arg in (
                        list(inner.posonlyargs)
                        + list(inner.args)
                        + list(inner.kwonlyargs)
                    ):
                        names.add(arg.arg)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ExceptHandler) and node.name:
                names.add(node.name)
            elif isinstance(node, ast.Lambda):
                inner = node.args
                for arg in (
                    list(inner.posonlyargs)
                    + list(inner.args)
                    + list(inner.kwonlyargs)
                ):
                    names.add(arg.arg)
    return names


def _base_name(node: ast.expr) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _analyse(
    module: SourceModule, fn, label: str, call_line: int
) -> list[Finding]:
    findings: list[Finding] = []
    local = _local_names(fn)

    def flag(lineno: int, message: str) -> None:
        findings.append(
            module.finding(
                CODE,
                lineno,
                f"{label} (submitted to an executor at line {call_line}) "
                f"{message}; shard tasks must communicate only through "
                "arguments and return values",
                rule=NAME,
            )
        )

    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Global):
                flag(node.lineno,
                     f"declares global {', '.join(node.names)}")
            elif isinstance(node, ast.Nonlocal):
                flag(node.lineno,
                     f"declares nonlocal {', '.join(node.names)}")
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if not isinstance(target, (ast.Subscript, ast.Attribute)):
                        continue
                    base = _base_name(target)
                    if base is not None and base not in local and base != "self":
                        flag(node.lineno,
                             f"writes through non-local name {base!r}")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if not isinstance(target, (ast.Subscript, ast.Attribute)):
                        continue
                    base = _base_name(target)
                    if base is not None and base not in local:
                        flag(node.lineno,
                             f"deletes through non-local name {base!r}")
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
            ):
                base = _base_name(node.func.value)
                if base is not None and base not in local:
                    flag(
                        node.lineno,
                        f"calls mutating method .{node.func.attr}() on "
                        f"non-local name {base!r}",
                    )
    return findings
