"""RPL004 — protocol randomness derives from public coins only.

The paper's guarantees assume both parties draw their randomly-shifted
grids, tabulation tables, and hash salts from a *shared* seed; the wire
format, shard placement, and golden transcripts are all reproducible
functions of that seed.  Any ambient entropy in protocol code — unseeded
``random`` module functions, ``os.urandom``, ``secrets``,
``random.SystemRandom`` — or any wall-clock read silently breaks
reproducibility in ways no differential test reliably catches.

``random.Random(seed)`` instances are explicitly allowed: that is exactly
how public coins are drawn.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.project import Project
from repro.lint.scopes import PROTOCOL, in_scope

CODE = "RPL004"
NAME = "determinism"
DESCRIPTION = (
    "no unseeded random.* functions, SystemRandom, os.urandom, secrets, "
    "or wall-clock reads in protocol code (random.Random(seed) allowed)"
)

#: ``random`` module attributes that consume the shared global (unseeded)
#: state or the OS entropy pool.
NONDETERMINISTIC_RANDOM = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate", "SystemRandom",
    }
)

#: ``time`` module attributes that read the wall clock / CPU clock.
CLOCK_READS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns", "sleep",
        "localtime", "gmtime",
    }
)


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        if not in_scope(module.relpath, PROTOCOL):
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                findings.extend(_check_import(module, node))
            elif isinstance(node, ast.Attribute):
                findings.extend(_check_attribute(module, node))
    return findings


def _check_import(module, node) -> list[Finding]:
    out: list[Finding] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name.split(".")[0] == "secrets":
                out.append(
                    module.finding(
                        CODE,
                        node.lineno,
                        "protocol code imports 'secrets'; all protocol "
                        "randomness must derive from the shared public-coin "
                        "seed via random.Random(seed)",
                        rule=NAME,
                    )
                )
        return out
    if node.level:
        return out
    top = (node.module or "").split(".")[0]
    if top == "secrets":
        out.append(
            module.finding(
                CODE, node.lineno,
                "protocol code imports from 'secrets'; use the shared "
                "public-coin seed instead",
                rule=NAME,
            )
        )
    elif top == "random":
        for alias in node.names:
            if alias.name != "Random":
                out.append(
                    module.finding(
                        CODE,
                        node.lineno,
                        f"'from random import {alias.name}' pulls unseeded "
                        "global-state randomness into protocol code; only "
                        "random.Random(seed) instances are deterministic",
                        rule=NAME,
                    )
                )
    elif top == "time":
        out.append(
            module.finding(
                CODE, node.lineno,
                "protocol code imports from 'time'; protocol behaviour "
                "must not depend on the clock",
                rule=NAME,
            )
        )
    elif top == "os":
        for alias in node.names:
            if alias.name == "urandom":
                out.append(
                    module.finding(
                        CODE, node.lineno,
                        "'from os import urandom' draws OS entropy in "
                        "protocol code; use the shared public-coin seed",
                        rule=NAME,
                    )
                )
    return out


def _check_attribute(module, node: ast.Attribute) -> list[Finding]:
    base = node.value
    if not isinstance(base, ast.Name):
        return []
    if base.id == "random" and node.attr in NONDETERMINISTIC_RANDOM:
        what = (
            "random.SystemRandom draws OS entropy"
            if node.attr == "SystemRandom"
            else f"random.{node.attr} uses the unseeded global generator"
        )
        return [
            module.finding(
                CODE,
                node.lineno,
                f"{what}; protocol randomness must come from "
                "random.Random(seed) over the shared public coins",
                rule=NAME,
            )
        ]
    if base.id == "os" and node.attr == "urandom":
        return [
            module.finding(
                CODE, node.lineno,
                "os.urandom draws OS entropy in protocol code; use the "
                "shared public-coin seed",
                rule=NAME,
            )
        ]
    if base.id == "time" and node.attr in CLOCK_READS:
        return [
            module.finding(
                CODE, node.lineno,
                f"time.{node.attr} makes protocol behaviour clock-"
                "dependent; timing belongs in the transport layer",
                rule=NAME,
            )
        ]
    if base.id == "secrets":
        return [
            module.finding(
                CODE, node.lineno,
                f"secrets.{node.attr} draws OS entropy in protocol code; "
                "use the shared public-coin seed",
                rule=NAME,
            )
        ]
    return []
