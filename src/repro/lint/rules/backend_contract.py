"""RPL006 — registered IBLT backends implement the full primitive set.

Backends promise bit-compatibility with the pure reference; the engine,
codec, and decoder reach them only through the primitives declared on
:class:`repro.iblt.backends.base.Backend`.  A backend that silently drops
or reshapes a primitive keeps working on the paths tests happen to cover
and corrupts the rest.  Unlike the other rules this one inspects *live
classes* from the backend registry (so it also covers third-party
backends registered at import time), not just source ASTs:

* every primitive must be present and callable;
* no abstract method may be left unimplemented;
* overridden primitives must be :func:`inspect.signature`-compatible with
  the base declaration — same leading parameters (name, kind, order);
  extra trailing parameters must carry defaults;
* ``available()`` must answer without raising (resolution calls it on
  every table build).
"""

from __future__ import annotations

import inspect
from pathlib import Path

from repro.lint.findings import Finding
from repro.lint.project import Project

CODE = "RPL006"
NAME = "backend-contract"
DESCRIPTION = (
    "every registered IBLT backend implements the full primitive set of "
    "backends/base.py with signature-compatible overrides"
)

#: The complete primitive surface the library calls on a backend.
PRIMITIVES = (
    "available",
    "supports",
    "apply",
    "apply_batch",
    "subtract",
    "copy",
    "load_rows",
    "cell",
    "rows",
    "rows_arrays",
    "is_empty",
    "nonzero_cells",
    "cell_is_pure",
    "pure_cells",
    "pure_mask",
    "gather_cells",
    "scatter_update",
    "merge_cells",
)

_VARIADIC = (
    inspect.Parameter.VAR_POSITIONAL,
    inspect.Parameter.VAR_KEYWORD,
)


def _class_location(project: Project, cls) -> tuple[str, int]:
    """Best-effort (path, line) for a live class, relative to the root."""
    try:
        filename = inspect.getsourcefile(cls)
        line = inspect.getsourcelines(cls)[1]
    except (OSError, TypeError):
        return f"<{cls.__module__}.{cls.__qualname__}>", 1
    path = Path(filename or "")
    try:
        return path.resolve().relative_to(project.root.resolve()).as_posix(), line
    except ValueError:
        return path.as_posix(), line


def _signature_problems(base_fn, impl_fn) -> list[str]:
    """Why ``impl_fn`` cannot stand in for ``base_fn`` (empty = compatible)."""
    try:
        base_params = list(inspect.signature(base_fn).parameters.values())
        impl_params = list(inspect.signature(impl_fn).parameters.values())
    except (TypeError, ValueError):
        return ["signature is not introspectable"]
    problems: list[str] = []
    impl_variadic = any(p.kind in _VARIADIC for p in impl_params)
    positional = [p for p in impl_params if p.kind not in _VARIADIC]
    for index, base_param in enumerate(base_params):
        if base_param.kind in _VARIADIC:
            continue
        if index >= len(positional):
            if not impl_variadic:
                problems.append(f"missing parameter {base_param.name!r}")
            continue
        impl_param = positional[index]
        if impl_param.name != base_param.name:
            problems.append(
                f"parameter {index} is {impl_param.name!r}, base declares "
                f"{base_param.name!r}"
            )
        elif impl_param.kind != base_param.kind:
            problems.append(
                f"parameter {impl_param.name!r} is {impl_param.kind.name}, "
                f"base declares {base_param.kind.name}"
            )
    required = sum(1 for p in base_params if p.kind not in _VARIADIC)
    for extra in positional[required:]:
        if extra.default is inspect.Parameter.empty:
            problems.append(
                f"extra parameter {extra.name!r} has no default; callers "
                "use the base signature"
            )
    return problems


def check(project: Project, registry=None) -> list[Finding]:
    if registry is None:
        registry = _live_registry(project)
        if registry is None:
            return []
    from repro.iblt.backends.base import Backend

    findings: list[Finding] = []
    for name in sorted(registry):
        cls = registry[name]
        path, line = _class_location(project, cls)

        def flag(message: str, at_line: int = line) -> None:
            findings.append(
                Finding(path=path, line=at_line, code=CODE,
                        message=f"backend {name!r}: {message}", rule=NAME)
            )

        leftover = sorted(getattr(cls, "__abstractmethods__", ()) or ())
        if leftover:
            flag("abstract primitives left unimplemented: " + ", ".join(leftover))
        try:
            if not isinstance(cls.available(), bool):
                flag("available() must return a bool")
        except Exception as exc:  # noqa: BLE001 - report, don't crash the lint
            flag(f"available() raised {type(exc).__name__}: {exc}")
        for primitive in PRIMITIVES:
            impl = getattr(cls, primitive, None)
            if impl is None or not callable(impl):
                flag(f"missing primitive {primitive}()")
                continue
            base_fn = getattr(Backend, primitive)
            if getattr(impl, "__func__", impl) is getattr(
                base_fn, "__func__", base_fn
            ):
                continue  # inherited unchanged: compatible by construction
            for problem in _signature_problems(base_fn, impl):
                impl_line = line
                try:
                    impl_line = inspect.getsourcelines(impl)[1]
                except (OSError, TypeError):
                    pass
                flag(f"{primitive}() signature incompatible with the base "
                     f"contract: {problem}", at_line=impl_line)
    return findings


def _live_registry(project: Project):
    """The real backend registry — only when linting the installed package.

    When the project root is some *other* tree (rule fixtures in tests, a
    vendored copy), inspecting this process's registry would attribute
    findings to files that are not part of the run, so the rule opts out.
    """
    import repro
    from repro.iblt.backends import registered_backends

    package_root = Path(repro.__file__).resolve().parent
    if project.root.resolve() != package_root:
        return None
    return registered_backends()
