"""RPL001 — sans-I/O purity of the protocol core.

The session state machines, the protocol/codec substrate they drive, and
the bit-level wire primitives must contain no I/O, no event loop, and no
wall-clock: PR 4's whole architecture rests on the same session bytes
being pumpable over a simulated channel, an asyncio loopback, or TCP.
An import of ``socket``/``asyncio``/``selectors``/``ssl`` — or of ``time``,
whose only use in protocol code would be timeouts or timing-dependent
behaviour — inside the protected set is a layering violation, whatever it
is used for.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.project import Project
from repro.lint.scopes import SANS_IO, in_scope

CODE = "RPL001"
NAME = "sans-io-purity"
DESCRIPTION = (
    "no socket/asyncio/selectors/ssl/time imports in session/, core/, "
    "iblt/, gf/, net/bits.py, net/codec.py"
)

#: Top-level module names that imply I/O, scheduling, or wall-clock time.
BANNED_MODULES = frozenset(
    {"socket", "asyncio", "selectors", "ssl", "time", "socketserver"}
)


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        if not in_scope(module.relpath, SANS_IO):
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: stays inside the package
                    continue
                names = [node.module or ""]
            else:
                continue
            for name in names:
                top = name.split(".")[0]
                if top in BANNED_MODULES:
                    findings.append(
                        module.finding(
                            CODE,
                            node.lineno,
                            f"sans-I/O module imports {top!r}; protocol code "
                            "must stay free of I/O, event loops, and "
                            "wall-clock time (move this to the transport "
                            "layer: serve/, net/channel.py, or the drivers)",
                            rule=NAME,
                        )
                    )
    return findings
