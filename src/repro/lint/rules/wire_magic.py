"""RPL005 — wire magic bytes are defined once and imported, never re-typed.

Every framed payload opens with a one-byte magic (``0xB5`` sketch, ``0xB6``
shard frame, ``0xB7`` level sketch, ``0xAD``/``0xAE`` adaptive rounds,
``0xC7`` rateless increment, ``0xC8`` rateless ack).  Each value must be
bound to exactly one ``*_MAGIC`` module constant, and every other mention
must reference that name: a re-typed hex literal is how two frame types end
up sharing a byte — a corruption that decodes cleanly on the wrong parser.

The rule finds all module-level ``<NAME ending in MAGIC> = <int>``
assignments, flags duplicate values, then flags any *hex-written* integer
literal equal to a registered magic outside its defining assignment.
(Hex spelling is the signature of a re-typed wire constant; matching every
decimal occurrence of small integers would drown the rule in noise.)
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.findings import Finding
from repro.lint.project import Project, SourceModule

CODE = "RPL005"
NAME = "wire-magic-uniqueness"
DESCRIPTION = (
    "each *_MAGIC wire byte is assigned exactly once and referenced by "
    "name, never re-typed as a hex literal"
)


@dataclass(frozen=True)
class MagicDef:
    value: int
    name: str
    relpath: str
    line: int


def magic_definitions(project: Project) -> list[MagicDef]:
    """Every module-level ``X*MAGIC = <int literal>`` in the tree."""
    defs: list[MagicDef] = []
    for module in project.modules:
        for node in module.tree.body:
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if not (isinstance(value, ast.Constant) and isinstance(value.value, int)):
                continue
            if isinstance(value.value, bool):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id.endswith("MAGIC"):
                    defs.append(
                        MagicDef(value.value, target.id, module.relpath, node.lineno)
                    )
    return defs


def _is_hex_literal(module: SourceModule, node: ast.Constant) -> bool:
    line = module.line(node.lineno)
    return line[node.col_offset : node.col_offset + 2].lower() == "0x"


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    defs = magic_definitions(project)
    by_value: dict[int, list[MagicDef]] = {}
    for definition in defs:
        by_value.setdefault(definition.value, []).append(definition)

    # One value, one definition.
    for value, definitions in sorted(by_value.items()):
        definitions.sort(key=lambda d: (d.relpath, d.line))
        for extra in definitions[1:]:
            first = definitions[0]
            findings.append(
                Finding(
                    path=extra.relpath,
                    line=extra.line,
                    code=CODE,
                    message=(
                        f"wire magic {value:#x} defined again as "
                        f"{extra.name}; already bound to {first.name} at "
                        f"{first.relpath}:{first.line} — import that name"
                    ),
                    rule=NAME,
                )
            )

    # No re-typed hex occurrences outside the defining assignment line.
    def_lines = {(d.relpath, d.line) for d in defs}
    magic_values = set(by_value)
    for module in project.modules:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Constant)
                and isinstance(node.value, int)
                and not isinstance(node.value, bool)
            ):
                continue
            if node.value not in magic_values:
                continue
            if (module.relpath, node.lineno) in def_lines:
                continue
            if not _is_hex_literal(module, node):
                continue
            owner = by_value[node.value][0]
            findings.append(
                module.finding(
                    CODE,
                    node.lineno,
                    f"wire magic {node.value:#x} re-typed as a literal; "
                    f"import {owner.name} from {owner.relpath} instead",
                    rule=NAME,
                )
            )
    return findings
