"""RPL003 — library errors flow through the ``ReproError`` hierarchy.

Callers are promised one catchable base type at protocol boundaries
(:class:`repro.errors.ReproError`) with meaningful subclasses under it; a
bare ``raise ValueError(...)`` deep inside the library silently breaks
that contract.  This rule flags every ``raise`` of a builtin exception
anywhere in the tree.

Deliberate exceptions exist — control-flow raises caught two lines later,
errors that intentionally mirror Python's own semantics — and are recorded
with an inline waiver carrying a reason::

    # repro-lint: waive[RPL003] reason=control flow; caught below

Raises of names this rule cannot resolve (caught-and-re-raised variables,
exception classes imported from elsewhere) are not flagged; the rule is a
tripwire for the common regression, not a type system.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.project import Project

CODE = "RPL003"
NAME = "typed-errors"
DESCRIPTION = (
    "library raises must be ReproError subclasses (inline waivers with a "
    "reason allowed)"
)

#: The root of the sanctioned hierarchy (defined in ``errors.py``).
ROOT_ERROR = "ReproError"

#: Builtin exceptions whose direct raise is a violation.
BANNED_BUILTINS = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "BaseException",
        "BufferError",
        "EOFError",
        "Exception",
        "FloatingPointError",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "MemoryError",
        "NotImplementedError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "StopIteration",
        "TypeError",
        "UnicodeDecodeError",
        "UnicodeEncodeError",
        "UnicodeError",
        "ValueError",
        "ZeroDivisionError",
    }
)


def typed_error_names(project: Project) -> set[str]:
    """Every class name in the project that (transitively) subclasses
    ``ReproError``, computed by name-level fixpoint over all class defs."""
    typed = {ROOT_ERROR}
    bases_of = _project_class_bases(project)
    changed = True
    while changed:
        changed = False
        for name, bases in bases_of.items():
            if name not in typed and bases & typed:
                typed.add(name)
                changed = True
    return typed


def _project_class_bases(project: Project) -> dict[str, set[str]]:
    """Base-class names (by terminal name) of every class def in the tree."""
    bases_of: dict[str, set[str]] = {}
    for module in project.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            names: set[str] = set()
            for base in node.bases:
                if isinstance(base, ast.Name):
                    names.add(base.id)
                elif isinstance(base, ast.Attribute):
                    names.add(base.attr)
            bases_of.setdefault(node.name, set()).update(names)
    return bases_of


def _raised_name(node: ast.Raise) -> str | None:
    exc = node.exc
    if exc is None:
        return None  # bare re-raise
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    typed = typed_error_names(project)
    # Project-defined exception classes that dodge the hierarchy: classes
    # whose base chain reaches a builtin exception but never ReproError.
    bases_of = _project_class_bases(project)
    untyped_locals = {
        name
        for name, bases in bases_of.items()
        if name not in typed and bases & (BANNED_BUILTINS | {"SystemExit"})
    }
    for module in project.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise):
                continue
            name = _raised_name(node)
            if name is None:
                continue
            if name in BANNED_BUILTINS:
                reason = f"raise of builtin {name}"
            elif name in untyped_locals:
                reason = (
                    f"raise of {name}, which subclasses a builtin "
                    "exception but not ReproError"
                )
            else:
                continue
            findings.append(
                module.finding(
                    CODE,
                    node.lineno,
                    f"{reason}; library errors must be ReproError "
                    "subclasses (see repro/errors.py) — or carry "
                    "'# repro-lint: waive[RPL003] reason=...' if this "
                    "raise is a reviewed exception",
                    rule=NAME,
                )
            )
    return findings
