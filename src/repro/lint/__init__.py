"""repro-lint — AST-based invariant checks for this codebase.

The repository rests on invariants no general-purpose linter knows about:
sessions and codecs are sans-I/O (PR 4), numpy is an optional extra with
bit-identical pure fallbacks (PRs 1/5), all protocol randomness derives
from the shared public-coin seed, library errors flow through the
``ReproError`` hierarchy, wire magic bytes are single-sourced, backends
honour the full primitive contract, and shard tasks stay executor-safe.
``repro.lint`` checks them mechanically on every PR::

    python -m repro.lint src/repro              # text output
    python -m repro.lint src/repro --format json

Rules (stable codes; see README "Static analysis" for the full table):

====== ======================= ==========================================
RPL001 sans-io-purity          no socket/asyncio/selectors/ssl/time in
                               the protocol core
RPL002 numpy-optional          numpy imports guarded, pure fallback bound
RPL003 typed-errors            raises are ReproError subclasses
RPL004 determinism             public-coin randomness only, no clocks
RPL005 wire-magic-uniqueness   magic bytes defined once, never re-typed
RPL006 backend-contract        registered backends implement the full
                               primitive set, signature-compatibly
RPL007 executor-safety         shard tasks mutate no shared state
====== ======================= ==========================================

Meta-codes: ``RPL900`` malformed waiver, ``RPL901`` stale waiver,
``RPL902`` unparsable file.

A reviewed exception is recorded inline, reason mandatory::

    # repro-lint: waive[RPL003] reason=control flow; caught below

Exit codes: ``0`` clean, ``1`` findings, ``2`` runner error.
"""

from __future__ import annotations

from repro.lint.engine import resolve_root, run_lint
from repro.lint.findings import Finding, LintReport
from repro.lint.rules import ALL_RULES, RULES_BY_CODE, WAIVABLE_CODES
from repro.lint.waivers import MALFORMED_WAIVER, STALE_WAIVER

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintReport",
    "MALFORMED_WAIVER",
    "RULES_BY_CODE",
    "STALE_WAIVER",
    "WAIVABLE_CODES",
    "resolve_root",
    "run_lint",
]
