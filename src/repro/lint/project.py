"""The source model rules run against: parsed modules of one package tree.

A :class:`Project` is a package root plus every ``*.py`` file under it,
each pre-parsed to an AST with its raw source kept alongside (several
rules need the source text — hex-literal detection, waiver comments).
Files that fail to parse become findings (``RPL902``) instead of
aborting the run, so one broken file cannot hide violations elsewhere.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.lint.findings import Finding

#: Meta-code for files the parser rejects.
PARSE_ERROR = "RPL902"


@dataclass
class SourceModule:
    """One parsed Python file of the linted package."""

    path: Path  #: absolute filesystem path
    relpath: str  #: posix path relative to the package root
    source: str
    tree: ast.Module
    lines: list[str]  #: raw source lines (index 0 = line 1)

    def line(self, lineno: int) -> str:
        """The raw text of a 1-based source line ('' when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(self, code: str, lineno: int, message: str, rule: str = "") -> Finding:
        return Finding(
            path=self.relpath, line=lineno, code=code, message=message, rule=rule
        )


class Project:
    """Every parsed module under one package root."""

    def __init__(self, root: Path, modules: list[SourceModule], parse_findings):
        self.root = root
        self.modules = modules
        self.parse_findings: list[Finding] = list(parse_findings)

    @classmethod
    def load(cls, root: Path) -> "Project":
        root = Path(root)
        modules: list[SourceModule] = []
        parse_findings: list[Finding] = []
        for path in sorted(root.rglob("*.py")):
            relpath = path.relative_to(root).as_posix()
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                parse_findings.append(
                    Finding(
                        path=relpath,
                        line=exc.lineno or 1,
                        code=PARSE_ERROR,
                        message=f"file does not parse: {exc.msg}",
                        rule="parse-error",
                    )
                )
                continue
            modules.append(
                SourceModule(
                    path=path,
                    relpath=relpath,
                    source=source,
                    tree=tree,
                    lines=source.splitlines(),
                )
            )
        return cls(root, modules, parse_findings)
