"""The lint engine: load a tree, run the rules, apply waivers, report.

:func:`run_lint` is the single entry point used by the CLI, the CI job,
and the self-tests; fixture tests point it at synthetic package trees and
(for the live-class rule) inject a registry.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ConfigError
from repro.lint.findings import Finding, LintReport
from repro.lint.project import Project
from repro.lint.rules import ALL_RULES, RULES_BY_CODE
from repro.lint.waivers import apply_waivers, collect_waivers


def resolve_root(path: str | Path) -> Path:
    """Normalise a CLI path to the package root to lint.

    Accepts the package directory itself (``src/repro``) or a directory
    one level above it that contains a single ``repro`` package
    (``src``) — the common way people point tools at source trees.
    """
    root = Path(path)
    if not root.is_dir():
        raise ConfigError(f"lint root {str(root)!r} is not a directory")
    if not (root / "__init__.py").exists():
        nested = root / "repro"
        if (nested / "__init__.py").exists():
            return nested
    return root


def run_lint(
    root: str | Path,
    select: set[str] | None = None,
    registry=None,
) -> LintReport:
    """Lint one package tree and return the waiver-filtered report.

    Parameters
    ----------
    root:
        Package directory to lint (see :func:`resolve_root`).
    select:
        Optional subset of rule codes to run (e.g. ``{"RPL003"}``);
        default runs every rule.  Waivers for deselected rules are left
        alone (neither applied nor reported stale).
    registry:
        Override for RPL006's live backend registry — fixture tests pass
        ``{name: cls}`` dicts; the default inspects the real registry when
        (and only when) the linted tree is the installed package.
    """
    root = resolve_root(root)
    if select is not None:
        unknown = sorted(select - set(RULES_BY_CODE))
        if unknown:
            raise ConfigError(
                f"unknown rule code(s) {', '.join(unknown)}; known: "
                + ", ".join(sorted(RULES_BY_CODE))
            )
    active = set(RULES_BY_CODE) if select is None else set(select)

    project = Project.load(root)
    raw: list[Finding] = list(project.parse_findings)
    for rule in ALL_RULES:
        if rule.CODE not in active:
            continue
        if rule.CODE == "RPL006":
            raw.extend(rule.check(project, registry=registry))
        else:
            raw.extend(rule.check(project))

    waivers_by_path = {}
    meta: list[Finding] = []
    known_codes = set(RULES_BY_CODE)
    for module in project.modules:
        waivers, malformed = collect_waivers(module, known_codes)
        meta.extend(malformed)
        if waivers:
            waivers_by_path[module.relpath] = waivers

    kept, stale, used = apply_waivers(raw, waivers_by_path, active)
    findings = sorted(kept + meta + stale)
    return LintReport(
        root=str(root),
        files=len(project.modules) + len(project.parse_findings),
        findings=findings,
        waivers_used=used,
    )
