"""Sensor fusion: the paper's motivating scenario, end to end.

Run with::

    python examples/sensor_fusion.py

Two sensors observe the same 5000 objects with independent measurement
noise; each additionally holds 4 detections the other lacks (missed objects
and clutter).  We reconcile sensor B towards sensor A three ways and
compare what each method ships:

* the robust protocol — pays only for the 12 genuinely different detections;
* exact IBF reconciliation — pays for every noisy re-measurement (~2n keys);
* full transfer — the ceiling.

This is Table-1-style evidence for the paper's thesis: when "equal" means
"equal up to sensor noise", exact reconciliation loses its entire advantage
and robust reconciliation restores it.
"""

from repro import ProtocolConfig, reconcile
from repro.baselines import ExactIBF, FullTransfer
from repro.workloads import sensor_pair

DELTA = 2**20
DIMENSION = 2


def main() -> None:
    scene = sensor_pair(
        seed=21,
        n_objects=5000,
        delta=DELTA,
        dimension=DIMENSION,
        sensor_noise=4.0,
        missed=3,
        ghosts=1,
    )
    print(scene.describe())
    print()

    k = 2 * scene.true_k  # budget with a little slack
    config = ProtocolConfig(delta=DELTA, dimension=DIMENSION, k=k, seed=21)
    robust = reconcile(scene.alice, scene.bob, config)
    from repro.emd.estimate import GridEmdEstimator

    robust_emd = GridEmdEstimator(DELTA, DIMENSION, seed=1).estimate(
        scene.alice, robust.repaired
    )

    exact = ExactIBF(DELTA, DIMENSION, seed=21).run(scene.alice, scene.bob)
    full = FullTransfer(DELTA, DIMENSION).run(scene.alice, scene.bob)

    print(f"{'method':<14} {'bits':>10} {'EMD to sensor A':>16}")
    print("-" * 42)
    print(f"{'robust':<14} {robust.transcript.total_bits:>10} {robust_emd:>15.0f}~")
    print(f"{'exact-ibf':<14} {exact.total_bits:>10} {0.0:>16.0f}")
    print(f"{'full':<14} {full.total_bits:>10} {0.0:>16.0f}")
    print()
    print(f"exact IBF shipped a table for {exact.info['difference']} "
          f"'differences' — almost every one a noisy duplicate.")
    print(f"robust decoded at level {robust.level} and edited only "
          f"{robust.alice_surplus + robust.bob_surplus} detections.")
    ratio = exact.total_bits / robust.transcript.total_bits
    print(f"robust vs exact-ibf communication: {ratio:.1f}x smaller")


if __name__ == "__main__":
    main()
