"""Floating-point measurement databases: the 1-D budget sweep.

Run with::

    python examples/noisy_measurements.py

Two replicas of a measurement table hold the same 2000 readings, but one
side re-computed them with a different floating-point pipeline (simulated
as small rounding perturbations after fixed-point quantisation onto a
2^24 grid).  A few dozen readings were also inserted on one side only.

We sweep the budget parameter k and watch the accuracy/communication
trade-off: the repaired EMD tracks the EMD_k floor, and communication grows
linearly in k — the paper's core quantitative story, in one dimension where
exact EMD is cheap to verify at full scale.
"""

import random

from repro import ProtocolConfig, emd_1d, reconcile

DELTA = 2**24
N = 2000
TRUE_K = 24


def quantise(value: float) -> int:
    """Map a reading in [0, 1) onto the fixed-point grid."""
    return max(0, min(DELTA - 1, int(value * DELTA)))


def make_replicas(seed: int = 5):
    rng = random.Random(seed)
    readings = [rng.random() for _ in range(N - TRUE_K)]
    alice = [(quantise(r),) for r in readings]
    # Bob's pipeline: the same values with last-places rounding drift.
    bob = [(quantise(r + rng.gauss(0, 1e-6)),) for r in readings]
    alice += [(quantise(rng.random()),) for _ in range(TRUE_K)]
    bob += [(quantise(rng.random()),) for _ in range(TRUE_K)]
    return alice, bob


def main() -> None:
    alice, bob = make_replicas()
    before = emd_1d(alice, bob)
    print(f"replicas: n={N}, drift EMD={before:.0f} grid units, "
          f"{TRUE_K} genuine inserts per side")
    print()
    print(f"{'k':>4} {'bits':>10} {'level':>6} {'EMD after':>12} {'vs before':>10}")
    print("-" * 48)
    for k in (4, 8, 16, 24, 48):
        config = ProtocolConfig(delta=DELTA, dimension=1, k=k, seed=5)
        result = reconcile(alice, bob, config)
        after = emd_1d(alice, result.repaired)
        print(
            f"{k:>4} {result.transcript.total_bits:>10} {result.level:>6} "
            f"{after:>12.0f} {after / before:>9.2%}"
        )
    print()
    print("larger budgets decode finer levels: more bits, less residual EMD")


if __name__ == "__main__":
    main()
