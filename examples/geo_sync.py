"""Geospatial POI sync with the two-round adaptive protocol.

Run with::

    python examples/geo_sync.py

Two map services hold the same ~1000 points of interest with GPS-scale
jitter between their copies, plus a handful of POIs only one side knows.
The universe is large (2^20 per axis), which makes the one-round protocol's
"ship every level" strategy pay a 21-level tax.  The adaptive variant
estimates the decode level first and ships a 3-level window — same quality,
a fraction of the bits.
"""

from repro import ProtocolConfig, emd, reconcile, reconcile_adaptive
from repro.workloads import geo_pair

DELTA = 2**20


def main() -> None:
    pois = geo_pair(
        seed=33,
        n=4000,
        delta=DELTA,
        true_k=8,
        noise=5.0,
        cities=15,
    )
    print(pois.describe())
    print()

    config = ProtocolConfig(delta=DELTA, dimension=2, k=16, seed=33)
    one_round = reconcile(pois.alice, pois.bob, config)
    adaptive = reconcile_adaptive(pois.alice, pois.bob, config)

    def quality(repaired):
        if len(repaired) <= 600:
            return emd(pois.alice, repaired, backend="scipy")
        from repro.emd.estimate import GridEmdEstimator

        return GridEmdEstimator(DELTA, 2, seed=1).estimate(pois.alice, repaired)

    print(f"{'protocol':<12} {'rounds':>6} {'bits':>10} {'level':>6} {'EMD~':>12}")
    print("-" * 50)
    for name, result in (("one-round", one_round), ("adaptive", adaptive)):
        print(
            f"{name:<12} {result.transcript.rounds:>6} "
            f"{result.transcript.total_bits:>10} {result.level:>6} "
            f"{quality(result.repaired):>12.0f}"
        )
    saving = one_round.transcript.total_bits / adaptive.transcript.total_bits
    print()
    print(f"adaptive saves {saving:.1f}x by probing before sending")
    print(f"adaptive round sizes: B->A {adaptive.transcript.bob_to_alice_bits} "
          f"bits (estimators), A->B {adaptive.transcript.alice_to_bob_bits} "
          f"bits (window)")


if __name__ == "__main__":
    main()
