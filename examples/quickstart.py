"""Quickstart: reconcile two noisy point sets in ten lines.

Run with::

    python examples/quickstart.py

Alice and Bob hold 500 two-dimensional points each.  490 of them describe
the same underlying records but differ by ±3 of coordinate noise; 10 per
side are genuinely different.  The robust protocol ships one O(k log Δ)
message and repairs Bob's set to within a small multiple of the best
possible (EMD_k) — while classical exact reconciliation would have paid for
all ~500 noisy "differences".
"""

import random

from repro import ProtocolConfig, SimulatedChannel, emd, emd_k, reconcile

DELTA = 2**16
DIMENSION = 2
N = 500
TRUE_K = 10
NOISE = 3


def make_sets(seed: int = 7):
    """A shared base with noise on Bob's copies plus TRUE_K unique each."""
    rng = random.Random(seed)

    def point():
        return tuple(rng.randrange(DELTA) for _ in range(DIMENSION))

    def jitter(p):
        return tuple(
            max(0, min(DELTA - 1, c + rng.randint(-NOISE, NOISE))) for c in p
        )

    base = [point() for _ in range(N - TRUE_K)]
    alice = base + [point() for _ in range(TRUE_K)]
    bob = [jitter(p) for p in base] + [point() for _ in range(TRUE_K)]
    return alice, bob


def main() -> None:
    alice, bob = make_sets()
    config = ProtocolConfig(delta=DELTA, dimension=DIMENSION, k=TRUE_K, seed=7)

    channel = SimulatedChannel()
    result = reconcile(alice, bob, config, channel=channel)

    before = emd(alice, bob, backend="scipy")
    after = emd(alice, result.repaired, backend="scipy")
    floor = emd_k(alice, bob, TRUE_K, backend="scipy")
    naive_bits = len(alice) * DIMENSION * 16  # full transfer

    print("robust set reconciliation — quickstart")
    print("--------------------------------------")
    print(f"points per side          : {len(alice)}")
    print(f"genuine differences      : {TRUE_K} per side (noise ±{NOISE})")
    print(f"message                  : {result.transcript.describe()}")
    print(f"  vs full transfer       : {naive_bits} bits")
    print(f"decoded at grid level    : {result.level} "
          f"(cell side {2 ** result.level})")
    print(f"repair                   : +{result.alice_surplus} centres, "
          f"-{result.bob_surplus} points")
    print(f"EMD(alice, bob) before   : {before:.0f}")
    print(f"EMD(alice, repaired)     : {after:.0f}")
    print(f"EMD_k floor (k={TRUE_K})      : {floor:.0f}")
    if floor > 0:
        print(f"approximation ratio      : {after / floor:.2f}x "
              f"(guarantee: O(d) = O({DIMENSION}))")
    assert len(result.repaired) == len(alice)


if __name__ == "__main__":
    main()
