"""A coordinator keeping a fleet of drifting replicas in sync.

Run with::

    python examples/replica_fleet.py

Combines the two operational features built on the paper's protocol:

* the coordinator maintains its hierarchy sketch **incrementally**
  (``O(log Δ)`` IBLT updates per point change — no re-encoding), and
* one sketch is **broadcast** to every replica; each repairs itself at its
  own finest decodable level, so fresh replicas make fine, cheap repairs
  while stale ones degrade gracefully to coarse repairs — from the same
  message.

The simulation runs three epochs of coordinator churn (inserts + deletes)
with replicas drifting at different rates, printing the fleet state after
each broadcast.
"""

import random

from repro import ProtocolConfig, emd
from repro.core.broadcast import broadcast_reconcile
from repro.core.incremental import IncrementalSketch
from repro.core.protocol import HierarchicalReconciler

DELTA = 2**16
N = 400
EPOCHS = 3
DRIFTS = (1, 6, 40)  # per-replica noise radius applied each epoch


def jitter(rng, point, radius):
    return tuple(
        max(0, min(DELTA - 1, c + rng.randint(-radius, radius)))
        for c in point
    )


def main() -> None:
    rng = random.Random(99)
    config = ProtocolConfig(delta=DELTA, dimension=2, k=12, seed=99)

    coordinator = [
        (rng.randrange(DELTA), rng.randrange(DELTA)) for _ in range(N)
    ]
    sketch = IncrementalSketch(config)
    sketch.insert_all(coordinator)
    replicas = [list(coordinator) for _ in DRIFTS]

    for epoch in range(1, EPOCHS + 1):
        # Coordinator churn: delete 5 points, insert 5 new ones —
        # maintained incrementally, never re-encoded from scratch.
        for _ in range(5):
            victim = coordinator.pop(rng.randrange(len(coordinator)))
            sketch.remove(victim)
            fresh = (rng.randrange(DELTA), rng.randrange(DELTA))
            coordinator.append(fresh)
            sketch.insert(fresh)
        # Replica drift at their individual rates.
        replicas = [
            [jitter(rng, point, drift) for point in replica]
            for replica, drift in zip(replicas, DRIFTS)
        ]

        payload = sketch.encode()
        report = broadcast_reconcile(coordinator, replicas, config)
        assert 8 * len(payload) == report.payload_bits

        print(f"epoch {epoch}: {report.summary()}")
        for index, (drift, result) in enumerate(zip(DRIFTS, report.results)):
            before = emd(coordinator, replicas[index], backend="scipy")
            after = emd(coordinator, result.repaired, backend="scipy")
            print(
                f"  replica {index} (drift ±{drift:>2}): level "
                f"{result.level:>2}, EMD {before:>8.0f} -> {after:>8.0f}"
            )
            replicas[index] = result.repaired
        print()

    # The incremental sketch stayed bit-identical to a fresh encode.
    fresh = HierarchicalReconciler(config).encode(coordinator)
    assert sketch.encode() == fresh
    print("incremental sketch verified bit-identical to a fresh encode")


if __name__ == "__main__":
    main()
