"""A reconciliation server and two concurrent clients, over real TCP.

Run with::

    python examples/serve_sync.py

Everything in one asyncio process: a
:class:`~repro.serve.ReconciliationServer` (Alice — the reference data
holder) serves on a loopback port in one task, while **two clients sync
concurrently** in another — one replica using the one-round protocol,
one using the two-round adaptive protocol.  Both run the same sans-I/O
session machines that power the simulated channel, so each client's wire
bytes are identical to an in-process ``reconcile``/``reconcile_adaptive``
run — which the example verifies at the end, along with the server's
per-session stats.
"""

import asyncio
import random

from repro import ProtocolConfig, reconcile, reconcile_adaptive
from repro.serve import ReconciliationServer, sync

DELTA = 2**14
N = 300
NOISE = 3


def make_replica(rng, reference):
    """A drifted copy: most points jittered slightly, a few lost."""
    replica = []
    for index, point in enumerate(reference):
        if index < 4:  # the replica missed these writes entirely
            continue
        replica.append(tuple(
            max(0, min(DELTA - 1, c + rng.randint(-NOISE, NOISE)))
            for c in point
        ))
    return replica


async def main() -> None:
    rng = random.Random(17)
    config = ProtocolConfig(delta=DELTA, dimension=2, k=16, seed=17)
    reference = [
        (rng.randrange(DELTA), rng.randrange(DELTA)) for _ in range(N)
    ]
    replica_a = make_replica(rng, reference)
    replica_b = make_replica(rng, reference)

    async with ReconciliationServer(config, reference) as server:
        host, port = server.address
        print(f"server: holding {len(reference)} points on {host}:{port}")

        # Two clients sync concurrently over TCP, one per variant.
        result_a, result_b = await asyncio.gather(
            sync(host, port, config, replica_a, variant="one-round"),
            sync(host, port, config, replica_b, variant="adaptive"),
        )

    for name, result in (("one-round", result_a), ("adaptive", result_b)):
        print(f"client {name:>9}: repaired to {len(result.repaired)} points, "
              f"{result.transcript.total_bits} bits over "
              f"{result.transcript.rounds} round(s)")

    summary = server.summary()
    print(f"server: {summary['sessions']} sessions, {summary['ok']} ok, "
          f"{summary['failed']} failed; "
          f"{summary['bytes_out']} B out / {summary['bytes_in']} B in")

    # The TCP runs are byte-identical to simulated-channel runs.
    simulated_a = reconcile(reference, replica_a, config)
    simulated_b = reconcile_adaptive(reference, replica_b, config)
    same_repair = (
        sorted(result_a.repaired) == sorted(simulated_a.repaired)
        and sorted(result_b.repaired) == sorted(simulated_b.repaired)
    )
    same_bits = (
        result_a.transcript == simulated_a.transcript
        and result_b.transcript == simulated_b.transcript
    )
    print(f"TCP matches the simulated channel: repairs equal={same_repair}, "
          f"transcripts equal={same_bits}")


if __name__ == "__main__":
    asyncio.run(main())
